//! Self-hosted runs and the shard sweep.
//!
//! The sweep is the headline experiment of this subsystem: start the cache
//! server with 1, 2, 4, 8 … shards, drive the identical closed-loop Zipf
//! workload against each, and report throughput per shard count. On a
//! multi-core host the single-shard point is serialized behind one mutex
//! while the sharded points spread the same traffic over independent locks,
//! so throughput should grow until the host runs out of cores (or the
//! workload stops being lock-bound). The JSON report records the speedup of
//! every point against the first so regressions are one `jq` away.

use crate::report::{ServerEcho, SweepPoint, SweepReport, SWEEP_SCHEMA};
use crate::runner::{run_load, LoadgenConfig};
use crate::LoadReport;
use cache_server::{
    BackendConfig, BackendMode, CacheServer, HotKeyConfig, ServerConfig, TenantSpec,
};
use cliffhanger::{ShardBalanceConfig, TenantBalanceConfig};
use serde_json::Value;

/// Configuration for self-hosted runs (the server the loadgen spawns).
#[derive(Clone, Debug)]
pub struct SelfHostConfig {
    /// Cache budget in bytes.
    pub total_bytes: u64,
    /// Allocator mode.
    pub mode: BackendMode,
    /// Server event-loop threads; 0 auto-detects (one per CPU, capped —
    /// see [`cache_server::default_event_loops`]). Loops multiplex many
    /// connections each, so this no longer needs to track the connection
    /// count.
    pub workers: usize,
    /// Whether the backend's cross-shard rebalancer runs (the backend
    /// default; turn off to measure static per-shard splits).
    pub rebalance: bool,
    /// Tenants to host besides `default`. Empty derives them from the load
    /// config's tenant list (reservation weight = traffic weight), so a
    /// multi-tenant load self-hosts without repeating itself; set explicitly
    /// to decouple reservations from traffic (the arbitration experiments).
    pub tenants: Vec<TenantSpec>,
    /// Whether the cross-tenant arbiter runs (off = Memcachier-style static
    /// reservations).
    pub tenant_balance: bool,
    /// Idle connection reaping timeout in milliseconds; 0 disables reaping
    /// (the server default). Loadgen connections are busy, so this is only
    /// interesting for experiments that deliberately leak sessions.
    pub idle_timeout_ms: u64,
    /// Slow-op log threshold in microseconds; 0 disables the log (the
    /// server default). Ops at or over the threshold are counted in the
    /// server's `slow_ops` stat and sampled into its flight-recorder
    /// journal; the per-loop latency histograms record regardless.
    pub slow_op_micros: u64,
    /// Online MRC sampling rate denominator (the server default profiles
    /// one in 64 GETs; rounded up to a power of two; 0 disables live
    /// miss-ratio-curve profiling).
    pub mrc_sample: u64,
    /// Enable hot-key detection and per-loop replication
    /// (`--hot-key-promote`): the aggressive profile — sample every GET,
    /// promote fast, round often — so short runs exercise the whole
    /// promote/replicate/invalidate cycle.
    pub hot_key_promote: bool,
}

impl Default for SelfHostConfig {
    fn default() -> Self {
        SelfHostConfig {
            total_bytes: 64 << 20,
            mode: BackendMode::Cliffhanger,
            workers: 0,
            rebalance: true,
            tenants: Vec::new(),
            tenant_balance: true,
            idle_timeout_ms: 0,
            slow_op_micros: 0,
            mrc_sample: BackendConfig::default().mrc_sample,
            hot_key_promote: false,
        }
    }
}

fn stat_u64(stats: &[(String, String)], name: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0)
}

/// Starts an in-process server with `shards` shards, runs the configured
/// load against it, and returns the report with server-side facts attached.
pub fn run_self_hosted(
    load: &LoadgenConfig,
    host: &SelfHostConfig,
    shards: usize,
) -> std::io::Result<LoadReport> {
    let workers = if host.workers > 0 {
        host.workers
    } else {
        cache_server::default_event_loops()
    };
    // Host every tenant the load will select; explicit host tenants win.
    let tenants: Vec<TenantSpec> = if host.tenants.is_empty() {
        load.tenants
            .iter()
            .filter(|t| t.name != "default")
            .map(|t| TenantSpec::new(t.name.clone(), t.weight.max(1)))
            .collect()
    } else {
        host.tenants.clone()
    };
    let mut server = CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        // Self-hosted runs size the accept gate generously above the
        // configured connection count; gate behaviour is the server tests'
        // concern, not the load generator's.
        max_connections: (load.connections * 2).max(4096),
        idle_timeout: (host.idle_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(host.idle_timeout_ms)),
        slow_op_micros: host.slow_op_micros,
        backend: BackendConfig {
            total_bytes: host.total_bytes,
            mode: host.mode,
            shards,
            rebalance: if host.rebalance {
                ShardBalanceConfig::default()
            } else {
                ShardBalanceConfig::disabled()
            },
            tenants,
            tenant_balance: if host.tenant_balance {
                TenantBalanceConfig::default()
            } else {
                TenantBalanceConfig::disabled()
            },
            mrc_sample: host.mrc_sample,
            hot_key: if host.hot_key_promote {
                HotKeyConfig::aggressive()
            } else {
                HotKeyConfig::default()
            },
            ..BackendConfig::default()
        },
    })?;
    let mut config = load.clone();
    config.addr = server.local_addr().to_string();
    let result = run_load(&config);
    let stats = server.cache().stats();
    // Scrape the machine-readable telemetry document over the wire — the
    // same `stats json` surface an operator's collector would hit — so the
    // report embeds the server's own view of the run (per-loop service-time
    // histograms, slow ops, the control-plane journal).
    let server_stats = cache_server::CacheClient::connect(server.local_addr())
        .and_then(|mut c| c.stats_json())
        .ok()
        .and_then(|json| serde_json::from_str(&json).ok());
    server.shutdown();
    let mut report = result?;
    report.server_stats = server_stats;
    // Hot-key facts come from the scraped document, not the text stats —
    // the legacy text key set is pinned (see the server's stats_keys test)
    // and additive telemetry lands in `stats json` only.
    let hot_doc = report
        .server_stats
        .as_ref()
        .and_then(|doc| doc.get("hot_keys"));
    let hot_u64 = |name: &str| -> u64 {
        hot_doc
            .and_then(|h| h.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    report.server = Some(ServerEcho {
        shards: server.cache().shard_count() as u64,
        total_bytes: host.total_bytes,
        allocator: format!("{:?}", host.mode).to_lowercase(),
        workers: workers as u64,
        evictions: stat_u64(&stats, "evictions"),
        rebalance_enabled: stat_u64(&stats, "rebalance:enabled") == 1,
        rebalance_runs: stat_u64(&stats, "rebalance:runs"),
        rebalance_transfers: stat_u64(&stats, "rebalance:transfers"),
        rebalance_bytes_moved: stat_u64(&stats, "rebalance:bytes_moved"),
        tenant_count: stat_u64(&stats, "tenant_count").max(1),
        arbiter_enabled: stat_u64(&stats, "arbiter:enabled") == 1,
        arbiter_runs: stat_u64(&stats, "arbiter:runs"),
        arbiter_transfers: stat_u64(&stats, "arbiter:transfers"),
        arbiter_bytes_moved: stat_u64(&stats, "arbiter:bytes_moved"),
        event_loops: stat_u64(&stats, "plane:event_loops"),
        plane_local_ops: stat_u64(&stats, "plane:local_ops"),
        plane_remote_ops: stat_u64(&stats, "plane:remote_ops"),
        plane_admin_msgs: stat_u64(&stats, "plane:admin_msgs"),
        shard_owner_loops: (0..server.cache().shard_count())
            .map(|s| stat_u64(&stats, &format!("shard:{s}:owner_loop")))
            .collect(),
        idle_closed_connections: stat_u64(&stats, "idle_closed_connections"),
        slow_ops: stat_u64(&stats, "plane:slow_ops"),
        hot_key_enabled: hot_doc.is_some(),
        hot_key_promotions: hot_u64("promotions"),
        hot_key_demotions: hot_u64("demotions"),
        hot_key_replica_hits: hot_u64("replica_hits"),
    });
    // Attach each tenant section's server-side facts (budget, gradient
    // signal, evictions) from the per-tenant stats lines.
    for section in &mut report.tenants {
        let name = &section.tenant;
        section.budget_bytes = stat_u64(&stats, &format!("tenant:{name}:budget"));
        section.shadow_hits = stat_u64(&stats, &format!("tenant:{name}:shadow_hits"));
        section.evictions = stat_u64(&stats, &format!("tenant:{name}:evictions"));
    }
    Ok(report)
}

/// Runs the same workload against servers with each of `shard_counts`
/// shards and collects the throughput curve.
pub fn run_shard_sweep(
    load: &LoadgenConfig,
    host: &SelfHostConfig,
    shard_counts: &[usize],
) -> std::io::Result<SweepReport> {
    let mut points = Vec::with_capacity(shard_counts.len());
    let mut baseline_rps = 0.0f64;
    for &shards in shard_counts {
        let report = run_self_hosted(load, host, shards)?;
        if baseline_rps == 0.0 {
            baseline_rps = report.throughput_rps;
        }
        // Label the point with the shard count that actually ran — the
        // backend budget-caps the requested count (min 1 MB per shard), and
        // attributing a number to a config that never ran would corrupt the
        // scaling curve.
        let resolved = report
            .server
            .as_ref()
            .map(|s| s.shards)
            .unwrap_or(shards as u64);
        points.push(SweepPoint {
            shards: resolved,
            throughput_rps: report.throughput_rps,
            speedup_vs_baseline: if baseline_rps > 0.0 {
                report.throughput_rps / baseline_rps
            } else {
                0.0
            },
            hit_rate: report.hit_rate,
            p99_us: report.latency.p99_us,
            report,
        });
    }
    Ok(SweepReport {
        schema: SWEEP_SCHEMA.to_string(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use workloads::{KeyPopularity, SizeDistribution};

    fn tiny_load() -> LoadgenConfig {
        LoadgenConfig {
            connections: 2,
            requests: 1_500,
            warmup_keys: 300,
            pipeline: 8,
            workload: WorkloadSpec {
                keys: KeyPopularity::Zipf {
                    num_keys: 800,
                    exponent: 0.99,
                },
                sizes: SizeDistribution::Fixed(100),
                ..WorkloadSpec::default()
            },
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn self_hosted_run_attaches_server_facts() {
        // Explicit worker count: loops no longer track connections, and the
        // auto-detected default depends on the host's CPUs.
        let host = SelfHostConfig {
            workers: 2,
            ..SelfHostConfig::default()
        };
        let report = run_self_hosted(&tiny_load(), &host, 2).unwrap();
        let server = report.server.expect("self-hosted run must echo server");
        assert_eq!(server.shards, 2);
        assert_eq!(server.workers, 2);
        assert_eq!(report.requests, 1_500);
        assert!(report.throughput_rps > 0.0);
        // The wire-scraped telemetry document rides along, with real
        // per-class service-time samples behind it.
        let stats = report
            .server_stats
            .expect("self-hosted run must scrape stats json");
        assert_eq!(
            stats.get("schema").and_then(|v| v.as_str()),
            Some("cliffhanger-stats/v1")
        );
        let local_count = stats
            .get("service_latency")
            .and_then(|s| s.get("local"))
            .and_then(|s| s.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let remote_count = stats
            .get("service_latency")
            .and_then(|s| s.get("remote"))
            .and_then(|s| s.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        assert!(
            local_count + remote_count > 0,
            "the run's ops must land in the server-side histograms"
        );
    }

    #[test]
    fn multi_tenant_self_host_registers_tenants_and_attaches_budgets() {
        use crate::workload::TenantLoad;
        let mut load = tiny_load();
        load.connections = 2;
        load.tenants = vec![
            TenantLoad::new("alpha", 1, load.workload.clone()),
            TenantLoad::new("beta", 1, load.workload.clone()),
        ];
        let host = SelfHostConfig {
            total_bytes: 12 << 20,
            ..SelfHostConfig::default()
        };
        let report = run_self_hosted(&load, &host, 2).unwrap();
        let server = report.server.as_ref().expect("server echo");
        assert_eq!(server.tenant_count, 3, "default + alpha + beta");
        assert!(server.arbiter_enabled);
        assert_eq!(report.tenants.len(), 2);
        for section in &report.tenants {
            assert!(
                section.budget_bytes > 0,
                "self-hosted sections carry live budgets: {section:?}"
            );
            assert_eq!(section.errors, 0);
        }
        let budgets: u64 = report.tenants.iter().map(|t| t.budget_bytes).sum();
        assert!(budgets <= 12 << 20, "tenant budgets within the total");
    }

    #[test]
    fn sweep_labels_points_with_the_resolved_shard_count() {
        // 2 MB of cache budget caps the backend at 2 shards (1 MB each), so
        // a requested 8-shard point must be labeled with what actually ran.
        let host = SelfHostConfig {
            total_bytes: 2 << 20,
            ..SelfHostConfig::default()
        };
        let sweep = run_shard_sweep(&tiny_load(), &host, &[8]).unwrap();
        assert_eq!(sweep.points[0].shards, 2);
        assert_eq!(sweep.points[0].report.server.as_ref().unwrap().shards, 2);
    }

    #[test]
    fn sweep_produces_one_point_per_shard_count() {
        let sweep = run_shard_sweep(&tiny_load(), &SelfHostConfig::default(), &[1, 2]).unwrap();
        assert_eq!(sweep.schema, SWEEP_SCHEMA);
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(sweep.points[0].shards, 1);
        assert_eq!(sweep.points[1].shards, 2);
        assert!((sweep.points[0].speedup_vs_baseline - 1.0).abs() < 1e-9);
        assert!(sweep.points[1].throughput_rps > 0.0);
        for point in &sweep.points {
            assert_eq!(point.report.requests, 1_500);
        }
    }
}
