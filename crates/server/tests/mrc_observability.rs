//! End-to-end validation of the live MRC observability plane.
//!
//! The server profiles sampled GETs into per-tenant online miss-ratio
//! curves (paper §5's profiler, run *live* against production traffic
//! instead of offline traces). These tests drive a Zipf-skewed GET stream
//! through the data plane, replay the identical reference stream into the
//! exact Fenwick-tree stack-distance simulator, and require the `stats
//! json` curve to agree with the exact curve at every probed scale — at
//! the degenerate R=1 rate (every GET profiled) and at the production
//! R=1/64 spatial sample. They also pin the `history` time-series and
//! `allocator` sections, and the Prometheus label escaping for hostile
//! tenant names.

use bytes::Bytes;
use cache_core::{hash_bytes, Key};
use cache_server::{
    BackendConfig, BackendMode, CacheClient, CacheServer, ServerConfig, TenantSpec,
};
use profiler::StackDistanceTracker;
use serde_json::Value;
use std::time::Duration;

/// Deterministic xorshift64* generator — no external RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A Zipf(1.0) rank sampler by CDF inversion over precomputed weights.
struct Zipf {
    cdf: Vec<f64>,
    rng: XorShift,
}

impl Zipf {
    fn new(distinct: usize, seed: u64) -> Zipf {
        let mut cdf = Vec::with_capacity(distinct);
        let mut acc = 0.0;
        for rank in 1..=distinct {
            acc += 1.0 / rank as f64;
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        Zipf {
            cdf,
            rng: XorShift(seed),
        }
    }

    fn next_rank(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cdf.partition_point(|&p| p < u)
    }
}

fn start_server(mrc_sample: u64, tenants: Vec<TenantSpec>) -> CacheServer {
    CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        backend: BackendConfig {
            total_bytes: 2 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 4,
            mrc_sample,
            tenants,
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server must start")
}

/// Drives `requests` Zipf GETs for the default tenant and returns the exact
/// reference curve over the identical key stream (same 64-bit cache keys
/// the plane routes on, so reuse distances match by construction).
fn drive_zipf(server: &CacheServer, distinct: usize, requests: usize) -> profiler::HitRateCurve {
    let handle = server.cache();
    let payload = Bytes::from(vec![b'v'; 400]);
    // Store a slice of the key population so the document can express the
    // tenant budget in items (mean live item footprint needs live items).
    for rank in 0..400.min(distinct) {
        handle.set(format!("z{rank}").as_bytes(), 0, payload.clone());
    }
    let mut zipf = Zipf::new(distinct, 0x5eed);
    let mut exact = StackDistanceTracker::new();
    let mut slept = false;
    for i in 0..requests {
        let key = format!("z{}", zipf.next_rank());
        handle.get(key.as_bytes());
        exact.record(Key::new(hash_bytes(key.as_bytes())));
        if !slept && i == requests / 2 {
            // Straddle a history-interval boundary so the merged time
            // series holds at least two buckets (rates need a difference).
            std::thread::sleep(Duration::from_millis(1100));
            slept = true;
        }
    }
    exact.to_curve()
}

fn stats_doc(server: &CacheServer) -> Value {
    let mut client = CacheClient::connect(server.local_addr()).unwrap();
    let json = client.stats_json().unwrap();
    serde_json::from_str(&json).expect("stats json must parse")
}

fn default_tenant_mrc(doc: &Value) -> Value {
    doc.get("mrc")
        .and_then(|m| m.get("tenants"))
        .and_then(Value::as_array)
        .and_then(|ts| {
            ts.iter()
                .find(|t| t.get("name").and_then(Value::as_str) == Some("default"))
        })
        .expect("mrc section must carry the default tenant")
        .clone()
}

/// Asserts every probed point of the live curve against the exact
/// simulator within `tolerance` (absolute hit-rate error).
fn assert_curve_agrees(tenant: &Value, exact: &profiler::HitRateCurve, tolerance: f64) {
    let points = tenant
        .get("points")
        .and_then(Value::as_array)
        .expect("mrc points");
    assert!(
        points.len() >= 5,
        "every configured probe scale must be present: {points:?}"
    );
    for point in points {
        let items = point.get("items").and_then(Value::as_u64).unwrap();
        let live = point.get("hit_rate").and_then(Value::as_f64).unwrap();
        let reference = exact.hit_rate_at(items);
        assert!(
            (live - reference).abs() <= tolerance,
            "live MRC diverges from the exact simulator at {items} items: \
             live {live:.3} vs exact {reference:.3} (tolerance {tolerance})"
        );
    }
}

#[test]
fn live_mrc_matches_exact_curve_at_full_sampling() {
    let server = start_server(1, Vec::new());
    let exact = drive_zipf(&server, 2_500, 40_000);
    let doc = stats_doc(&server);

    let mrc = doc.get("mrc").expect("mrc section must be present");
    assert_eq!(mrc.get("sample_shift").and_then(Value::as_u64), Some(0));
    assert_eq!(mrc.get("sample_rate").and_then(Value::as_f64), Some(1.0));

    let tenant = default_tenant_mrc(&doc);
    let offered = tenant.get("offered").and_then(Value::as_u64).unwrap();
    let sampled = tenant.get("sampled").and_then(Value::as_u64).unwrap();
    assert_eq!(offered, 40_000, "every data-plane GET must be offered");
    assert_eq!(sampled, offered, "R=1 must sample every offered GET");
    assert!(tenant.get("budget_items").and_then(Value::as_u64).unwrap() > 0);
    // Acceptance bound: within 3pp of the exact curve at every probe.
    assert_curve_agrees(&tenant, &exact, 0.03);

    // The history ring differenced at least one interval of real traffic.
    let history = doc.get("history").expect("history section");
    assert_eq!(
        history.get("interval_us").and_then(Value::as_u64),
        Some(1_000_000)
    );
    let windows = history
        .get("windows")
        .and_then(Value::as_array)
        .expect("history windows");
    assert!(
        !windows.is_empty(),
        "a >1s run must produce at least one differenced window"
    );
    let busy = windows.iter().any(|w| {
        w.get("tenants")
            .and_then(Value::as_array)
            .map(|ts| {
                ts.iter().any(|t| {
                    t.get("name").and_then(Value::as_str) == Some("default")
                        && t.get("ops_per_sec").and_then(Value::as_f64).unwrap_or(0.0) > 0.0
                })
            })
            .unwrap_or(false)
    });
    assert!(busy, "some window must show default-tenant throughput");
    for w in windows {
        assert!(w.get("unix_us").and_then(Value::as_u64).is_some());
        assert!(w.get("seconds").and_then(Value::as_f64).unwrap() > 0.0);
    }

    // The allocator join section is always present (empty without
    // transfers) and the clock fields are coherent.
    let allocator = doc.get("allocator").expect("allocator section");
    assert!(allocator.get("window_us").and_then(Value::as_u64).is_some());
    assert!(allocator
        .get("transfers")
        .and_then(Value::as_array)
        .is_some());
    let start = doc.get("server_start").and_then(Value::as_u64).unwrap();
    let snap_at = doc.get("snapshot_unix_us").and_then(Value::as_u64).unwrap();
    assert!(start > 0 && snap_at >= start);
    assert!(doc.get("uptime_s").and_then(Value::as_u64).is_some());

    // The Prometheus rendering exposes the same curve points.
    let mut client = CacheClient::connect(server.local_addr()).unwrap();
    let prom = client.stats_prom().unwrap();
    assert!(prom.contains("# TYPE cliffhanger_tenant_mrc_hit_rate gauge"));
    assert!(prom.contains("cliffhanger_tenant_mrc_hit_rate{app=\"default\",scale=\"1\"}"));
    assert!(prom.contains("cliffhanger_uptime_seconds"));
}

#[test]
fn sampled_mrc_tracks_exact_curve_at_production_rate() {
    let server = start_server(64, Vec::new());
    let exact = drive_zipf(&server, 8_000, 240_000);
    let doc = stats_doc(&server);

    let mrc = doc.get("mrc").expect("mrc section must be present");
    assert_eq!(mrc.get("sample_shift").and_then(Value::as_u64), Some(6));

    let tenant = default_tenant_mrc(&doc);
    let offered = tenant.get("offered").and_then(Value::as_u64).unwrap();
    let sampled = tenant.get("sampled").and_then(Value::as_u64).unwrap();
    assert_eq!(offered, 240_000);
    let rate = sampled as f64 / offered as f64;
    assert!(
        (0.2 / 64.0..5.0 / 64.0).contains(&rate),
        "spatial sampling must land near 1/64: {rate}"
    );
    let tracked = tenant.get("tracked_keys").and_then(Value::as_u64).unwrap();
    assert!(
        tracked < 500,
        "the sampled estimator must track a small key subset: {tracked}"
    );
    // A 1/64 spatial sample carries statistical error; the SHARDS-adjusted
    // estimate must still land within 10pp everywhere.
    assert_curve_agrees(&tenant, &exact, 0.10);
}

#[test]
fn profiling_disabled_omits_the_mrc_section() {
    let server = start_server(0, Vec::new());
    let handle = server.cache();
    handle.set(b"k", 0, Bytes::from_static(b"v"));
    handle.get(b"k");
    let doc = stats_doc(&server);
    assert!(
        doc.get("mrc")
            .map(|v| matches!(v, Value::Null))
            .unwrap_or(true),
        "mrc_sample=0 must omit the mrc section"
    );
    // History and the clock fields do not depend on profiling.
    assert!(doc.get("history").is_some());
    assert!(doc.get("server_start").and_then(Value::as_u64).unwrap() > 0);
}

#[test]
fn prom_labels_escape_hostile_tenant_names() {
    // Quotes and backslashes are legal ASCII-graphic tenant-name bytes and
    // must be escaped, not emitted raw, in every label position.
    let name = r#"he"llo\x"#;
    let server = start_server(64, vec![TenantSpec::new(name, 1)]);
    let handle = server.cache();
    let tenant = handle.tenant_index(name).expect("tenant must resolve");
    handle.set_for(tenant, b"k", 0, Bytes::from_static(b"v"));
    handle.get_for(tenant, b"k");

    let mut client = CacheClient::connect(server.local_addr()).unwrap();
    let prom = client.stats_prom().unwrap();
    let escaped = r#"he\"llo\\x"#;
    for series in [
        format!("cliffhanger_tenant_bytes_used{{tenant=\"{escaped}\"}}"),
        format!("cliffhanger_tenant_budget_bytes{{tenant=\"{escaped}\"}}"),
        format!("cliffhanger_tenant_cmd_get{{app=\"{escaped}\"}}"),
        format!("cliffhanger_tenant_get_hits{{app=\"{escaped}\"}}"),
        format!("cliffhanger_tenant_bytes{{app=\"{escaped}\"}}"),
        format!("cliffhanger_tenant_budget{{app=\"{escaped}\"}}"),
    ] {
        assert!(
            prom.contains(&series),
            "exposition must carry the escaped label: {series}\n{prom}"
        );
    }
    assert!(
        !prom.contains(&format!("app=\"{name}\"")),
        "raw unescaped tenant names must never reach the exposition"
    );
}
