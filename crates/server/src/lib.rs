//! # cache-server
//!
//! A Memcached-text-protocol TCP server backed by the Cliffhanger-managed
//! cache, plus a blocking client. This is the piece the paper's
//! micro-benchmarks exercise (Tables 6 and 7): the protocol and connection
//! handling are the fixed cost, and the question is how much latency and
//! throughput overhead the shadow queues and the two algorithms add on top.
//!
//! The server's I/O path is event-driven: a handful of epoll event-loop
//! threads (the shape pelikan and Memcached use in production) each
//! multiplex many non-blocking connections, so connection count is bounded
//! by the `max_connections` accept gate and by fds — not by the thread
//! count — and idle sessions cost buffers, not parked OS threads. The
//! workload itself stays memory-bound (the paper makes the same point
//! about Memcachier and Facebook in §5.6), which is exactly why a few
//! loops are enough to saturate the cache.
//!
//! * [`protocol`] — parsing and serialising the Memcached ASCII protocol,
//!   including the multi-tenant `app <name>` session selector and the
//!   `app_create` / `app_list` live-onboarding admin commands. The
//!   resumable [`protocol::Parser`] lets a connection pick a `set` back up
//!   mid-value when the data block trickles in.
//! * [`backend`] — the shared, N-way sharded, multi-tenant cache behind the
//!   connections (exact byte-string keys on top of the 64-bit key space;
//!   every shard hosts one engine *per tenant* with its own lock and
//!   counters, per-tenant budgets rebalance across shards, a cross-tenant
//!   arbiter replaces static reservations, and tenants can be onboarded
//!   live with a budget carve-out).
//! * [`reactor`] — the epoll event loops and the wakeup-pipe hand-off from
//!   the acceptor (thin unsafe FFI against the system libc; no crates).
//! * [`server`] — the TCP listener, accept gate and lifecycle.
//! * [`client`] — a blocking client for tests, benches and examples.
//!
//! (The old `threadpool` module is gone with the blocking I/O path — the
//! reactor's event loops are the only serving threads.)

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod backend;
pub mod client;
mod conn;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use backend::{detect_shards, BackendConfig, BackendMode, SharedCache, TenantSpec};
pub use client::CacheClient;
pub use protocol::{Command, Response};
pub use reactor::ConnTelemetry;
pub use server::{default_event_loops, CacheServer, ServerConfig};
