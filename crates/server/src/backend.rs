//! The shared cache behind the TCP connections.
//!
//! The wire protocol uses arbitrary byte-string keys while the cache core
//! uses compact 64-bit keys, so the backend hashes the byte key (FNV-1a) and
//! stores the full key alongside the value to verify exact matches on
//! lookup — a hash collision is simply treated as a miss for the colliding
//! key, never as a wrong value.
//!
//! # Sharding
//!
//! The engine is partitioned into N independent shards, each owning a slice
//! of the key space (selected by a second hash of the key, decorrelated from
//! the 64-bit cache key), with its own mutexes and wire-level counters.
//! Requests for different shards never contend; `flush_all` and `stats` fan
//! out across every shard. This is the same shape as Memcached's
//! `-t`-threaded hash table + per-partition slab engines (and pelikan's
//! per-worker storage).
//!
//! # Multi-tenancy
//!
//! The paper's whole setting is a Memcachier-style server where many
//! applications share one cache (§3): each [`TenantSpec`] names an
//! application and its reservation weight, and every shard hosts one
//! independent engine *per tenant* — a tenant's requests, evictions and
//! `flush_all` can never touch another tenant's keys, exactly as if every
//! key were transparently prefixed with `<app>:` but with hard budget
//! isolation on top. A connection that never issues the `app` command runs
//! in the `default` tenant (index 0) and observes the single-tenant
//! behaviour unchanged.
//!
//! # The allocation hierarchy
//!
//! Budgets move on three levels, all driven by the same shadow-queue
//! gradient signal (paper §4.1), innermost to outermost:
//!
//! 1. *Within an engine*: the Cliffhanger hill climber moves credits between
//!    slab classes on every shadow hit.
//! 2. *Across shards, within a tenant*: every
//!    [`ShardBalanceConfig::interval_requests`] wire requests a
//!    [`ShardRebalancer`] round per tenant compares the per-shard shadow-hit
//!    deltas and moves a credit of budget from the flattest shard to the
//!    steepest (see `cliffhanger::shard_balance`), via
//!    `Cliffhanger::shrink_total` / `Cliffhanger::grow_total`.
//! 3. *Across tenants, globally*: every
//!    [`TenantBalanceConfig::interval_requests`] requests the
//!    [`TenantArbiter`] compares whole-tenant shadow-hit deltas and moves
//!    budget between applications, spreading each transfer across the
//!    donor's and winner's engines on every shard — Memcachier's static
//!    reservations replaced by live arbitration.
//!
//! Shard locks are only ever taken one at a time, after the round's decision
//! locks (arbiter before per-tenant balancer), so no round can deadlock with
//! request traffic or with `flush`. `stats` exposes the live budgets as
//! `tenant:<app>:budget` / `shard:<i>:budget` and the round counters as
//! `rebalance:*` / `arbiter:*` lines.

use crate::engine::{even_split, route_key, weighted_split, Engine};
use crate::hotkey::HotKeyConfig;
use crate::stats::{render_stats, BalanceCounters, EngineStat, StatsSnapshot, WireCounts};
use bytes::Bytes;
use cache_core::{Key, SlabConfig, TenantDirectory};
use cliffhanger::{
    ShardBalanceConfig, ShardRebalancer, ShardSample, TenantArbiter, TenantBalanceConfig,
    TenantSample,
};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which allocation scheme the server runs (Tables 6–7 compare these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendMode {
    /// Stock Memcached behaviour: first-come-first-serve slab allocation.
    Default,
    /// Hill climbing only (Algorithm 1).
    HillClimbing,
    /// The full Cliffhanger system (both algorithms).
    Cliffhanger,
}

/// One hosted application and its reservation weight.
///
/// Budgets start proportional to the weights (a weight-2 tenant reserves
/// twice the bytes of a weight-1 tenant) and then move under arbitration
/// unless [`TenantBalanceConfig::enabled`] is off.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// The application name clients select with `app <name>`. Must satisfy
    /// [`TenantDirectory::valid_name`].
    pub name: String,
    /// Relative reservation weight; must be at least 1.
    pub weight: u64,
}

impl TenantSpec {
    /// A tenant with the given name and weight.
    pub fn new(name: impl Into<String>, weight: u64) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight,
        }
    }
}

/// Sharding below this per-engine budget hurts more than it helps (the slab
/// classes no longer fit), so auto-detection caps the shard count to keep
/// every tenant's engine on every shard at least this large (at even
/// weights).
const MIN_SHARD_BYTES: u64 = 1 << 20;

/// Upper bound on auto-detected shards; explicit configuration may exceed it.
const MAX_AUTO_SHARDS: usize = 64;

/// Returns the number of shards auto-detection would pick for this host:
/// one per available CPU (`num_cpus`-style), capped at `MAX_AUTO_SHARDS`.
pub fn detect_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_SHARDS)
}

/// Backend configuration.
#[derive(Clone, Debug)]
pub struct BackendConfig {
    /// Total cache memory in bytes, split across tenants by weight and then
    /// evenly across the shards.
    pub total_bytes: u64,
    /// Which allocation scheme to run.
    pub mode: BackendMode,
    /// Slab-class geometry.
    pub slab: SlabConfig,
    /// Number of independent shards; `0` auto-detects from the host's
    /// available parallelism. Both explicit and detected counts are capped
    /// so every tenant's engine keeps at least 1 MB of budget — the clamp is
    /// logged at construction and exposed as the `shards_requested` stats
    /// line; check [`SharedCache::shard_count`] (or `resolved_shards`) for
    /// the count actually running.
    pub shards: usize,
    /// Per-tenant cross-shard budget rebalancing. Enabled by default; only
    /// effective with more than one shard and a managed (non-`Default`)
    /// allocator, since the gradient signal comes from the Cliffhanger
    /// shadow queues.
    pub rebalance: ShardBalanceConfig,
    /// Applications hosted besides the always-present `default` tenant.
    /// Empty reproduces the single-tenant server exactly.
    pub tenants: Vec<TenantSpec>,
    /// Cross-tenant budget arbitration. Enabled by default; only effective
    /// with more than one tenant and a managed allocator. Off reproduces
    /// Memcachier's static reservations.
    pub tenant_balance: TenantBalanceConfig,
    /// Online miss-ratio-curve sampling rate denominator: on average one in
    /// `mrc_sample` GETs is profiled (rounded up to a power of two; `0`
    /// disables profiling). Only the threaded plane profiles; the mutex
    /// backend ignores it.
    pub mrc_sample: u64,
    /// Hot-key detection and per-loop replication. Disabled by default.
    /// Only the threaded plane mitigates; the mutex backend has no loops
    /// to replicate across and ignores it.
    pub hot_key: HotKeyConfig,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            total_bytes: 64 << 20,
            mode: BackendMode::Cliffhanger,
            slab: SlabConfig::default(),
            shards: 0,
            rebalance: ShardBalanceConfig::default(),
            tenants: Vec::new(),
            tenant_balance: TenantBalanceConfig::default(),
            mrc_sample: 64,
            hot_key: HotKeyConfig::default(),
        }
    }
}

impl BackendConfig {
    /// The tenant directory this configuration resolves to: `default` at
    /// index 0, configured tenants after it in order (duplicates collapse).
    pub fn tenant_directory(&self) -> TenantDirectory {
        let names: Vec<&str> = self.tenants.iter().map(|t| t.name.as_str()).collect();
        TenantDirectory::from_names(&names)
    }

    /// Per-tenant reservation weights aligned with
    /// [`BackendConfig::tenant_directory`] indices. The default tenant's
    /// weight is 1 unless it is listed explicitly.
    pub(crate) fn tenant_weights(&self, directory: &TenantDirectory) -> Vec<u64> {
        directory
            .names()
            .iter()
            .map(|name| {
                let weight = self
                    .tenants
                    .iter()
                    .find(|t| &t.name == name)
                    .map(|t| t.weight)
                    .unwrap_or(1);
                assert!(weight >= 1, "tenant {name:?} weight must be at least 1");
                weight
            })
            .collect()
    }

    /// The shard count this configuration asks for, before the budget cap:
    /// the explicit value, or CPU-count detection when `shards == 0`.
    pub fn requested_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            detect_shards()
        }
    }

    /// The spatial-sampling shift the configured MRC rate resolves to:
    /// `Some(s)` profiles one in `2^s` keys (`mrc_sample` rounded up to a
    /// power of two), `None` disables profiling entirely.
    pub fn mrc_shift(&self) -> Option<u32> {
        match self.mrc_sample {
            0 => None,
            n => Some(n.next_power_of_two().trailing_zeros()),
        }
    }

    /// The shard count this configuration resolves to: the explicit value,
    /// or CPU-count detection when `shards == 0`, in both cases capped so no
    /// tenant engine drops below `MIN_SHARD_BYTES` at even weights.
    pub fn resolved_shards(&self) -> usize {
        let tenants = self.tenant_directory().len() as u64;
        let budget_cap = (self.total_bytes / (MIN_SHARD_BYTES * tenants)).max(1) as usize;
        self.requested_shards().clamp(1, budget_cap.max(1))
    }
}

/// Wire-level counters for one (shard, tenant) pair. They live outside the
/// engine mutexes and are updated with relaxed atomics — `stats` never takes
/// an engine lock just to read them.
#[derive(Default)]
struct WireAtomics {
    gets: AtomicU64,
    hits: AtomicU64,
    sets: AtomicU64,
    deletes: AtomicU64,
}

impl WireAtomics {
    /// Snapshot with relaxed reads.
    fn counts(&self) -> WireCounts {
        let gets = self.gets.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        WireCounts {
            gets,
            hits,
            // Relaxed counters can be momentarily skewed between the two
            // loads under concurrent traffic; never underflow.
            misses: gets.saturating_sub(hits),
            sets: self.sets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }
}

/// One tenant's engine on one shard, plus that pair's wire counters. The
/// request path clones the `Arc` out of the shard's cell table and drops
/// the table lock before touching the engine, so `app_create` growing the
/// table never contends with in-flight requests.
struct EngineCell {
    engine: Mutex<Engine>,
    wire: WireAtomics,
}

impl EngineCell {
    fn new(inner: Engine) -> Arc<EngineCell> {
        Arc::new(EngineCell {
            engine: Mutex::new(inner),
            wire: WireAtomics::default(),
        })
    }
}

/// One partition of the cache: an independent engine per tenant plus the
/// per-tenant counters. Engines of different tenants on the same shard have
/// separate mutexes, so tenants do not contend even on colliding shards.
/// The cell table is behind an `RwLock` only so `app_create` can append a
/// tenant live; existing indices are never moved or removed.
struct Shard {
    cells: RwLock<Vec<Arc<EngineCell>>>,
    /// Wire requests routed to this shard; drives the rebalancing and
    /// arbitration intervals without a globally shared counter (a single hot
    /// cache line would reintroduce exactly the cross-core contention
    /// sharding removed).
    ops: AtomicU64,
}

impl Shard {
    fn new(config: &BackendConfig, engine_bytes: &[u64]) -> Shard {
        Shard {
            cells: RwLock::new(
                engine_bytes
                    .iter()
                    .map(|&b| EngineCell::new(Engine::build(config, b)))
                    .collect(),
            ),
            ops: AtomicU64::new(0),
        }
    }
}

/// The mutable tenant table: directory, weights, per-tenant budgets and
/// cross-shard rebalancer state. One `RwLock` guards it so `app_create`
/// can grow every piece atomically; the request hot path never takes it
/// (shards index their cell tables directly, and tenant indices are
/// append-only).
struct TenantRoster {
    directory: TenantDirectory,
    /// Reservation weights aligned with the directory indices.
    weights: Vec<u64>,
    /// The per-(tenant, shard) budgets at construction or creation time
    /// (weight-proportional tenant shares, split evenly across shards;
    /// carve-out shares for tenants onboarded live); restored by a full
    /// flush.
    initial_budgets: Vec<Vec<u64>>,
    /// Live per-(tenant, shard) byte budgets. Relaxed atomics so `stats`
    /// reads them lock-free.
    budgets: Vec<Vec<AtomicU64>>,
    /// Per-tenant cross-shard rebalancer state; `try_lock`ed so at most one
    /// thread runs a tenant's round while the rest keep serving.
    balancers: Vec<Arc<Mutex<ShardRebalancer>>>,
}

impl TenantRoster {
    /// Live per-tenant byte budgets (summed over shards). The single
    /// definition behind both the public accessor and `stats`, which
    /// already holds the roster lock.
    fn tenant_budgets(&self) -> Vec<u64> {
        self.budgets
            .iter()
            .map(|per_shard| per_shard.iter().map(|b| b.load(Ordering::Relaxed)).sum())
            .collect()
    }

    /// Live per-shard byte budgets (summed over tenants).
    fn shard_budgets(&self, shards: usize) -> Vec<u64> {
        (0..shards)
            .map(|s| {
                self.budgets
                    .iter()
                    .map(|per_shard| per_shard[s].load(Ordering::Relaxed))
                    .sum()
            })
            .collect()
    }
}

/// A thread-safe, sharded, multi-tenant cache shared by every connection.
pub struct SharedCache {
    config: BackendConfig,
    roster: RwLock<TenantRoster>,
    /// `roster.directory.len()`, mirrored so the per-request `tick` path
    /// can check arbitration eligibility without a roster read lock.
    tenant_count: AtomicUsize,
    shards: Vec<Shard>,
    /// Cross-tenant arbiter state; `try_lock`ed in rounds. `flush` and
    /// `create_tenant` take this lock (not `try_lock`) before touching
    /// budgets, so a mid-round flush or carve-out cannot interleave with a
    /// transfer and leak budget.
    arbiter: Mutex<TenantArbiter>,
    /// Per-shard request count that triggers a rebalancing round
    /// (`interval_requests / shard_count`, at least 1).
    tick_interval: u64,
    /// Per-shard request count that triggers an arbitration round.
    arbiter_tick_interval: u64,
    rebalance_runs: AtomicU64,
    rebalance_transfers: AtomicU64,
    rebalance_bytes: AtomicU64,
    arbiter_runs: AtomicU64,
    arbiter_transfers: AtomicU64,
    arbiter_bytes: AtomicU64,
    /// Construction instant, for the `uptime` stats line.
    started: Instant,
}

impl SharedCache {
    /// Creates a shared cache with the configured tenants and (or detected)
    /// shard count.
    pub fn new(config: BackendConfig) -> Self {
        let directory = config.tenant_directory();
        let weights = config.tenant_weights(&directory);
        let requested = config.requested_shards();
        let n = config.resolved_shards();
        if n < requested {
            // The budget cap is a silent hit-rate/scaling hazard otherwise:
            // a sweep that asked for 8 shards may be measuring 2.
            eprintln!(
                "backend: shard count clamped from {requested} to {n} \
                 ({} MB total across {} tenant(s) keeps every engine >= {} MB); \
                 stats reports shards_requested/shard_count",
                config.total_bytes >> 20,
                directory.len(),
                MIN_SHARD_BYTES >> 20,
            );
        }
        let tenant_shares = weighted_split(config.total_bytes, &weights);
        let initial_budgets: Vec<Vec<u64>> = tenant_shares
            .iter()
            .map(|&share| even_split(share.max(1), n))
            .collect();
        let shards: Vec<Shard> = (0..n)
            .map(|s| {
                let engine_bytes: Vec<u64> = initial_budgets
                    .iter()
                    .map(|per_shard| per_shard[s])
                    .collect();
                Shard::new(&config, &engine_bytes)
            })
            .collect();
        let budgets: Vec<Vec<AtomicU64>> = initial_budgets
            .iter()
            .map(|per_shard| per_shard.iter().map(|&b| AtomicU64::new(b)).collect())
            .collect();
        let balancers = (0..directory.len())
            .map(|_| {
                Arc::new(Mutex::new(ShardRebalancer::new(
                    n,
                    config.rebalance.clone(),
                )))
            })
            .collect();
        let arbiter = Mutex::new(TenantArbiter::new(
            directory.len(),
            config.tenant_balance.clone(),
        ));
        let tick_interval = (config.rebalance.interval_requests / n as u64).max(1);
        let arbiter_tick_interval = (config.tenant_balance.interval_requests / n as u64).max(1);
        let tenant_count = AtomicUsize::new(directory.len());
        SharedCache {
            config,
            roster: RwLock::new(TenantRoster {
                directory,
                weights,
                initial_budgets,
                budgets,
                balancers,
            }),
            tenant_count,
            shards,
            arbiter,
            tick_interval,
            arbiter_tick_interval,
            rebalance_runs: AtomicU64::new(0),
            rebalance_transfers: AtomicU64::new(0),
            rebalance_bytes: AtomicU64::new(0),
            arbiter_runs: AtomicU64::new(0),
            arbiter_transfers: AtomicU64::new(0),
            arbiter_bytes: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The hosted tenant names (default first).
    pub fn tenant_names(&self) -> Vec<String> {
        self.roster.read().directory.names().to_vec()
    }

    /// Number of tenants hosted (at least 1).
    pub fn tenant_count(&self) -> usize {
        self.tenant_count.load(Ordering::Relaxed)
    }

    /// The dense index of a tenant name, if hosted (the `app` command's
    /// lookup).
    pub fn tenant_index(&self, name: &str) -> Option<usize> {
        self.roster.read().directory.index_of(name)
    }

    /// The engine cell of one (shard, tenant) pair. Clones the `Arc` out of
    /// the table and releases the table lock before the caller touches the
    /// engine mutex.
    ///
    /// Cost note: this is the price of live tenant onboarding — one shared
    /// read-lock acquisition plus an `Arc` refcount round-trip per request
    /// on the shard's cell table, which colliding tenants now share. For
    /// embedded use this is noise next to the caller's own work; the served
    /// path does not pay it at all — the server's shared-nothing data plane
    /// (`crate::plane`) gives each event loop outright ownership of its
    /// engines and refreshes its tenant table by generation snapshot.
    fn cell(&self, shard: usize, tenant: usize) -> Arc<EngineCell> {
        Arc::clone(&self.shards[shard].cells.read()[tenant])
    }

    /// Hosts a new application live: validates the name, carves a
    /// weight-proportional byte budget out of every existing tenant's
    /// engines (shrinking them with immediate eviction, the same machinery
    /// arbitration transfers use), and brings the tenant's engines up on
    /// every shard. Returns the new tenant's index.
    ///
    /// The carve-out conserves the configured total exactly: only bytes
    /// actually released by a donor engine are granted to the new tenant,
    /// and donors pinned at their class floors simply contribute less (the
    /// arbiter keeps moving budget afterwards, so the split converges on
    /// demand either way). The cross-tenant arbiter is rebuilt for the new
    /// tenant count, which costs one observation round of baseline.
    pub fn create_tenant(&self, name: &str, weight: u64) -> Result<usize, String> {
        if !TenantDirectory::valid_name(name) {
            return Err(format!(
                "invalid app name {name:?}: need 1-64 ASCII graphic bytes, no ':'"
            ));
        }
        if weight == 0 {
            return Err("app weight must be at least 1".to_string());
        }
        // Lock order everywhere: arbiter, then roster, then engines.
        let mut arbiter = self.arbiter.lock();
        let mut roster = self.roster.write();
        if roster.directory.index_of(name).is_some() {
            return Err(format!("app {name:?} already exists"));
        }
        let n = self.shards.len();
        let sum_weights: u64 = roster.weights.iter().sum();
        let target_total = (self.config.total_bytes as u128 * weight as u128
            / (sum_weights + weight) as u128) as u64;
        let target_slices = even_split(target_total.max(1), n);
        let mut carved = vec![0u64; n];
        for (s, &target_slice) in target_slices.iter().enumerate() {
            let shard_total: u64 = roster
                .budgets
                .iter()
                .map(|per_shard| per_shard[s].load(Ordering::Relaxed))
                .sum();
            for t in 0..roster.directory.len() {
                let budget = roster.budgets[t][s].load(Ordering::Relaxed);
                let ask =
                    (target_slice as u128 * budget as u128 / shard_total.max(1) as u128) as u64;
                if ask == 0 {
                    continue;
                }
                let cell = self.cell(s, t);
                if cell.engine.lock().shrink_total(ask) {
                    roster.budgets[t][s].fetch_sub(ask, Ordering::Relaxed);
                    carved[s] += ask;
                }
            }
        }
        // Rebase every tenant's flush-restore point to the post-carve live
        // split: restoring the donors' pre-carve budgets on `flush` while
        // the new tenant keeps its carve would over-commit the total.
        for t in 0..roster.directory.len() {
            for s in 0..n {
                roster.initial_budgets[t][s] = roster.budgets[t][s].load(Ordering::Relaxed);
            }
        }
        for (s, shard) in self.shards.iter().enumerate() {
            shard.cells.write().push(EngineCell::new(Engine::build(
                &self.config,
                carved[s].max(1),
            )));
        }
        let index = roster.directory.add(name);
        roster.weights.push(weight);
        roster
            .budgets
            .push(carved.iter().map(|&b| AtomicU64::new(b)).collect());
        roster.initial_budgets.push(carved);
        roster
            .balancers
            .push(Arc::new(Mutex::new(ShardRebalancer::new(
                n,
                self.config.rebalance.clone(),
            ))));
        *arbiter = TenantArbiter::new(roster.directory.len(), self.config.tenant_balance.clone());
        self.tenant_count
            .store(roster.directory.len(), Ordering::Relaxed);
        Ok(index)
    }

    /// The hosted applications as `(name, weight, live budget bytes)`, in
    /// directory order (the `app_list` command's view).
    pub fn app_list(&self) -> Vec<(String, u64, u64)> {
        let roster = self.roster.read();
        (0..roster.directory.len())
            .map(|t| {
                (
                    roster.directory.name(t).to_string(),
                    roster.weights[t],
                    roster.budgets[t]
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .sum(),
                )
            })
            .collect()
    }

    /// Whether per-tenant cross-shard rebalancing rounds can do anything.
    fn rebalance_active(&self) -> bool {
        self.config.rebalance.enabled
            && self.shards.len() > 1
            && self.config.mode != BackendMode::Default
    }

    /// Whether cross-tenant arbitration rounds can do anything. Reads the
    /// mirrored tenant count, not the roster — this runs on every request.
    fn arbiter_active(&self) -> bool {
        self.config.tenant_balance.enabled
            && self.tenant_count() > 1
            && self.config.mode != BackendMode::Default
    }

    /// Counts one wire request on its shard and runs rebalancing /
    /// arbitration rounds on their intervals — per-shard counters keep the
    /// hot path free of shared-line contention while the aggregate cadence
    /// stays at roughly one round per `interval_requests` under uniform
    /// routing. Must be called while holding no engine lock.
    fn tick(&self, shard: &Shard) {
        let rebalance = self.rebalance_active();
        let arbitrate = self.arbiter_active();
        if !rebalance && !arbitrate {
            return;
        }
        let n = shard.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if rebalance && n % self.tick_interval == 0 {
            self.rebalance_now();
        }
        if arbitrate && n % self.arbiter_tick_interval == 0 {
            self.arbitrate_now();
        }
    }

    /// Runs one cross-shard rebalancing round per tenant immediately (also
    /// exposed for tests and experiment drivers). A no-op when rebalancing
    /// is inactive; tenants whose round is already running on another thread
    /// are skipped.
    pub fn rebalance_now(&self) {
        if !self.rebalance_active() {
            return;
        }
        let roster = self.roster.read();
        let mut ran_any = false;
        for (t, balancer) in roster.balancers.iter().enumerate() {
            let Some(mut balancer) = balancer.try_lock() else {
                continue;
            };
            ran_any = true;
            // Snapshot the tenant's engine cells once per round; engine
            // locks are still taken one at a time below.
            let cells: Vec<Arc<EngineCell>> = self
                .shards
                .iter()
                .map(|shard| Arc::clone(&shard.cells.read()[t]))
                .collect();
            let samples: Vec<ShardSample> = cells
                .iter()
                .enumerate()
                .map(|(s, cell)| ShardSample {
                    shadow_hits: cell.engine.lock().stats().shadow_hits,
                    budget_bytes: roster.budgets[t][s].load(Ordering::Relaxed),
                })
                .collect();
            for tr in balancer.rebalance(&samples) {
                // Shrink first and only then grow — one engine lock at a
                // time, and the total can momentarily dip but never exceed
                // the budget.
                let released = cells[tr.from].engine.lock().shrink_total(tr.bytes);
                if !released {
                    continue;
                }
                roster.budgets[t][tr.from].fetch_sub(tr.bytes, Ordering::Relaxed);
                cells[tr.to].engine.lock().grow_total(tr.bytes);
                roster.budgets[t][tr.to].fetch_add(tr.bytes, Ordering::Relaxed);
                self.rebalance_transfers.fetch_add(1, Ordering::Relaxed);
                self.rebalance_bytes.fetch_add(tr.bytes, Ordering::Relaxed);
            }
        }
        // A round that found every balancer busy observed nothing; counting
        // it would skew the runs-vs-transfers diagnostics under concurrency.
        if ran_any {
            self.rebalance_runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs one cross-tenant arbitration round immediately (also exposed for
    /// tests and experiment drivers). A no-op when arbitration is inactive
    /// or another thread is mid-round.
    ///
    /// A tenant transfer is spread across every shard: each shard's slice of
    /// the donor engine is shrunk (evicting immediately, so the released
    /// bytes are real) and the winner's engine on the same shard grows by
    /// exactly the released slice — shard-local symmetry keeps the summed
    /// budget conserved even if some slices fail on their floors.
    pub fn arbitrate_now(&self) {
        if !self.arbiter_active() {
            return;
        }
        let Some(mut arbiter) = self.arbiter.try_lock() else {
            return;
        };
        let roster = self.roster.read();
        let n = self.shards.len() as u64;
        // Snapshot every shard's cell table once per round (one table lock
        // per shard, not one per sample/transfer); indexed [shard][tenant].
        let cells: Vec<Vec<Arc<EngineCell>>> = self
            .shards
            .iter()
            .map(|shard| shard.cells.read().clone())
            .collect();
        let samples: Vec<TenantSample> = (0..roster.directory.len())
            .map(|t| TenantSample {
                shadow_hits: cells
                    .iter()
                    .map(|shard| shard[t].engine.lock().stats().shadow_hits)
                    .sum(),
                budget_bytes: roster.budgets[t]
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .sum(),
            })
            .collect();
        for tr in arbiter.arbitrate(&samples) {
            let mut moved = 0u64;
            for (s, shard_cells) in cells.iter().enumerate() {
                let slice = tr.bytes / n + u64::from((s as u64) < tr.bytes % n);
                if slice == 0 {
                    continue;
                }
                let released = shard_cells[tr.from].engine.lock().shrink_total(slice);
                if !released {
                    // This shard's donor slice is pinned by its class
                    // floors; skip it (the arbiter re-samples real budgets
                    // next round, so nothing drifts).
                    continue;
                }
                roster.budgets[tr.from][s].fetch_sub(slice, Ordering::Relaxed);
                shard_cells[tr.to].engine.lock().grow_total(slice);
                roster.budgets[tr.to][s].fetch_add(slice, Ordering::Relaxed);
                moved += slice;
            }
            if moved > 0 {
                self.arbiter_transfers.fetch_add(1, Ordering::Relaxed);
                self.arbiter_bytes.fetch_add(moved, Ordering::Relaxed);
            }
        }
        self.arbiter_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// The live per-shard byte budgets, summed over tenants (even split at
    /// start; the rebalancers move them).
    pub fn shard_budgets(&self) -> Vec<u64> {
        self.roster.read().shard_budgets(self.shards.len())
    }

    /// The live per-tenant byte budgets (weight-proportional at start; the
    /// arbiter moves them).
    pub fn tenant_budgets(&self) -> Vec<u64> {
        self.roster.read().tenant_budgets()
    }

    /// Routes a byte-string key of one tenant to its shard index and 64-bit
    /// cache key (see [`crate::engine::route_key`], which the data plane
    /// shares so both backends route identically).
    fn route(&self, tenant: usize, key: &[u8]) -> (usize, Key) {
        route_key(tenant, key, self.shards.len())
    }

    /// Number of shards the cache is running.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a key for one tenant, returning its flags and value on an
    /// exact match.
    pub fn get_for(&self, tenant: usize, key: &[u8]) -> Option<(u32, Bytes)> {
        let (si, id) = self.route(tenant, key);
        self.tick(&self.shards[si]);
        let cell = self.cell(si, tenant);
        cell.wire.gets.fetch_add(1, Ordering::Relaxed);
        let found = cell.engine.lock().wire_get(id, key);
        if found.is_some() {
            cell.wire.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Whether a key is resident for one tenant (exact match), without
    /// recording a GET.
    pub fn contains_for(&self, tenant: usize, key: &[u8]) -> bool {
        let (si, id) = self.route(tenant, key);
        self.cell(si, tenant).engine.lock().contains_exact(id, key)
    }

    /// Stores a key for one tenant unconditionally. Returns `false` only if
    /// the item could not be admitted (e.g. larger than the largest slab
    /// class).
    pub fn set_for(&self, tenant: usize, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (si, id) = self.route(tenant, key);
        self.tick(&self.shards[si]);
        let cell = self.cell(si, tenant);
        cell.wire.sets.fetch_add(1, Ordering::Relaxed);
        let mut inner = cell.engine.lock();
        inner.wire_set(id, key, flags, data)
    }

    /// Stores a key for one tenant only if it is absent (`add`). Atomic with
    /// respect to concurrent writers on the same tenant and shard.
    pub fn add_for(&self, tenant: usize, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (si, id) = self.route(tenant, key);
        self.tick(&self.shards[si]);
        let cell = self.cell(si, tenant);
        let mut inner = cell.engine.lock();
        if inner.contains_exact(id, key) {
            return false;
        }
        cell.wire.sets.fetch_add(1, Ordering::Relaxed);
        inner.wire_set(id, key, flags, data)
    }

    /// Stores a key for one tenant only if it is present (`replace`). Atomic
    /// with respect to concurrent writers on the same tenant and shard.
    pub fn replace_for(&self, tenant: usize, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (si, id) = self.route(tenant, key);
        self.tick(&self.shards[si]);
        let cell = self.cell(si, tenant);
        let mut inner = cell.engine.lock();
        if !inner.contains_exact(id, key) {
            return false;
        }
        cell.wire.sets.fetch_add(1, Ordering::Relaxed);
        inner.wire_set(id, key, flags, data)
    }

    /// Deletes a key for one tenant; returns whether it was present.
    pub fn delete_for(&self, tenant: usize, key: &[u8]) -> bool {
        let (si, id) = self.route(tenant, key);
        self.tick(&self.shards[si]);
        let cell = self.cell(si, tenant);
        cell.wire.deletes.fetch_add(1, Ordering::Relaxed);
        let mut inner = cell.engine.lock();
        if !inner.contains_exact(id, key) {
            return false;
        }
        inner.delete(id)
    }

    /// Looks up a key for the default tenant.
    pub fn get(&self, key: &[u8]) -> Option<(u32, Bytes)> {
        self.get_for(0, key)
    }

    /// Whether a key is resident for the default tenant.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.contains_for(0, key)
    }

    /// Stores a key for the default tenant.
    pub fn set(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        self.set_for(0, key, flags, data)
    }

    /// `add` for the default tenant.
    pub fn add(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        self.add_for(0, key, flags, data)
    }

    /// `replace` for the default tenant.
    pub fn replace(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        self.replace_for(0, key, flags, data)
    }

    /// Deletes a key for the default tenant.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.delete_for(0, key)
    }

    /// Drops every item of one tenant (its `flush_all`), fanning out across
    /// the shards. The tenant's *current* (arbitrated) budget is kept but
    /// redistributed evenly across its shard engines and its cross-shard
    /// rebalancer forgets its baseline. Other tenants' keys, budgets and
    /// counters are untouched — and so is the cross-tenant arbiter's state:
    /// the rebuilt engines restart their counters from zero, which the
    /// gradient engine detects as a backwards counter and re-baselines on
    /// its own for exactly one round. (An explicit `arbiter.reset()` here
    /// would let any single tenant suppress arbitration *globally* and
    /// indefinitely by flushing more often than the arbitration interval.)
    pub fn flush_tenant(&self, tenant: usize) {
        // Lock order: arbiter, then the roster, then the tenant's balancer,
        // then engines — the same partial order every round uses, so an
        // in-flight round finishes before the rebuild and no half-applied
        // transfer can leak budget. The arbiter lock is held for
        // serialisation only.
        let _arbiter = self.arbiter.lock();
        let roster = self.roster.read();
        let mut balancer = roster.balancers[tenant].lock();
        let total: u64 = roster.budgets[tenant]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        let shares = even_split(total.max(1), self.shards.len());
        // Rebuild donor shards (new share at or below the current budget)
        // before grown ones: applying a grown share while another shard
        // still holds its old, larger budget would transiently raise the
        // tenant's summed live targets above its total, and concurrent
        // requests could fill into that overshoot.
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by_key(|&s| {
            std::cmp::Reverse(
                roster.budgets[tenant][s]
                    .load(Ordering::Relaxed)
                    .saturating_sub(shares[s]),
            )
        });
        for s in order {
            let cell = self.cell(s, tenant);
            *cell.engine.lock() = Engine::build(&self.config, shares[s]);
            roster.budgets[tenant][s].store(shares[s], Ordering::Relaxed);
        }
        balancer.reset();
    }

    /// Drops every item of every tenant, returning all budgets to their
    /// initial (weight-proportional, evenly sharded) split and forgetting
    /// every rebalancer and arbiter baseline.
    pub fn flush(&self) {
        // Hold every decision lock across the rebuild (arbiter first, then
        // the roster, then balancers in index order — the global lock
        // order). Tenants onboarded live return to their carve-out split.
        let mut arbiter = self.arbiter.lock();
        let roster = self.roster.read();
        let mut balancers: Vec<_> = roster.balancers.iter().map(|b| b.lock()).collect();
        for (s, shard) in self.shards.iter().enumerate() {
            // One cell-table snapshot per shard, not one lock per engine.
            let cells: Vec<Arc<EngineCell>> = shard.cells.read().clone();
            for (t, per_shard) in roster.initial_budgets.iter().enumerate() {
                *cells[t].engine.lock() = Engine::build(&self.config, per_shard[s]);
                roster.budgets[t][s].store(per_shard[s], Ordering::Relaxed);
            }
        }
        for balancer in balancers.iter_mut() {
            balancer.reset();
        }
        arbiter.reset();
    }

    /// Wire-level and cache-level statistics as `STAT` pairs.
    ///
    /// Aggregated counters come first (summed over every tenant and shard),
    /// then the allocation-hierarchy counters (`rebalance:*`, `arbiter:*`),
    /// then per-tenant breakdowns as `tenant:<app>:<name>` lines and
    /// per-shard breakdowns as `shard:<i>:<name>` lines — the exact key set
    /// and ordering of `crate::stats::render_stats`, which the server's
    /// data plane shares. Wire counters are read with relaxed atomics; only
    /// the cache-core statistics (bytes, items, evictions) briefly take each
    /// engine's lock in turn.
    pub fn stats(&self) -> Vec<(String, String)> {
        let roster = self.roster.read();
        let nt = roster.directory.len();
        let ns = self.shards.len();
        let cells: Vec<Vec<EngineStat>> = self
            .shards
            .iter()
            .map(|shard| {
                // Snapshot the cell table so engine locks are taken without it.
                let table: Vec<Arc<EngineCell>> = shard.cells.read().clone();
                table
                    .iter()
                    .take(nt)
                    .map(|cell| {
                        let wire = cell.wire.counts();
                        let inner = cell.engine.lock();
                        EngineStat {
                            wire,
                            core: inner.stats(),
                            used: inner.used_bytes(),
                            items: inner.len(),
                        }
                    })
                    .collect()
            })
            .collect();
        let snap = StatsSnapshot {
            total_bytes: self.config.total_bytes,
            mode: self.config.mode,
            requested_shards: self.config.requested_shards(),
            uptime_s: self.started.elapsed().as_secs(),
            cells,
            tenant_names: roster.directory.names().to_vec(),
            // Budgets computed on the roster we already hold — re-entering
            // the public accessors would re-take the roster lock.
            tenant_budgets: roster.tenant_budgets(),
            shard_budgets: roster.shard_budgets(ns),
            balance: BalanceCounters {
                rebalance_enabled: self.rebalance_active(),
                rebalance_runs: self.rebalance_runs.load(Ordering::Relaxed),
                rebalance_transfers: self.rebalance_transfers.load(Ordering::Relaxed),
                rebalance_bytes: self.rebalance_bytes.load(Ordering::Relaxed),
                arbiter_enabled: self.arbiter_active(),
                arbiter_runs: self.arbiter_runs.load(Ordering::Relaxed),
                arbiter_transfers: self.arbiter_transfers.load(Ordering::Relaxed),
                arbiter_bytes: self.arbiter_bytes.load(Ordering::Relaxed),
            },
        };
        render_stats(&snap, None, None)
    }

    /// The backend mode this cache runs.
    pub fn mode(&self) -> BackendMode {
        self.config.mode
    }
}

/// Re-export so backend users can name the default tenant without reaching
/// into `cache_core`.
pub use cache_core::tenant::DEFAULT_TENANT as DEFAULT_TENANT_NAME;

#[cfg(test)]
mod tests {
    use super::*;
    use cache_core::{hash_bytes, key::mix64};

    fn cache(mode: BackendMode) -> SharedCache {
        SharedCache::new(BackendConfig {
            total_bytes: 4 << 20,
            mode,
            shards: 2,
            ..BackendConfig::default()
        })
    }

    fn two_tenants(total: u64, shards: usize) -> BackendConfig {
        BackendConfig {
            total_bytes: total,
            mode: BackendMode::Cliffhanger,
            shards,
            tenants: vec![TenantSpec::new("alpha", 1), TenantSpec::new("beta", 1)],
            ..BackendConfig::default()
        }
    }

    /// The shard a byte-string key routes to for the default tenant,
    /// replicated from [`SharedCache::route`] so tests can build per-shard
    /// workloads.
    fn shard_of(key: &[u8], shards: usize) -> usize {
        (mix64(hash_bytes(key)) % shards as u64) as usize
    }

    #[test]
    fn rebalancer_moves_budget_toward_the_starved_shard() {
        let total = 8u64 << 20;
        let c = SharedCache::new(BackendConfig {
            total_bytes: total,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            rebalance: ShardBalanceConfig {
                credit_bytes: 128 << 10,
                min_shard_bytes: 1 << 20,
                min_gradient_gap: 4,
                ..ShardBalanceConfig::default()
            },
            ..BackendConfig::default()
        });
        // Shard 0 cycles a working set just past its 4 MB slice — roughly
        // 11k items fit, so a 13k-key cycle makes every re-request miss the
        // physical queue and land in the ~4k-entry shadow queue (a pure
        // gradient signal); shard 1 idles on a handful of keys.
        let shard0_keys: Vec<String> = (0..)
            .map(|i: u64| format!("hot-{i}"))
            .filter(|k| shard_of(k.as_bytes(), 2) == 0)
            .take(13_000)
            .collect();
        let shard1_keys: Vec<String> = (0..)
            .map(|i: u64| format!("cold-{i}"))
            .filter(|k| shard_of(k.as_bytes(), 2) == 1)
            .take(50)
            .collect();
        let payload = Bytes::from(vec![0u8; 200]);
        for round in 0..12 {
            for key in &shard0_keys {
                if c.get(key.as_bytes()).is_none() {
                    c.set(key.as_bytes(), 0, payload.clone());
                }
            }
            for key in &shard1_keys {
                if c.get(key.as_bytes()).is_none() {
                    c.set(key.as_bytes(), 0, payload.clone());
                }
            }
            c.rebalance_now();
            let _ = round;
        }
        let budgets = c.shard_budgets();
        assert_eq!(
            budgets.iter().sum::<u64>(),
            total,
            "rebalancing must conserve the total budget: {budgets:?}"
        );
        assert!(
            budgets[0] > budgets[1],
            "the starved shard should have gained budget: {budgets:?}"
        );
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["rebalance:enabled"], "1");
        assert!(stats["rebalance:transfers"].parse::<u64>().unwrap() > 0);
        assert!(stats["rebalance:bytes_moved"].parse::<u64>().unwrap() > 0);
        assert_eq!(stats["shard:0:budget"], budgets[0].to_string());
    }

    #[test]
    fn rebalance_disabled_keeps_static_budgets() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 8 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            rebalance: ShardBalanceConfig::disabled(),
            ..BackendConfig::default()
        });
        for i in 0..30_000u32 {
            let key = format!("k{i}");
            if c.get(key.as_bytes()).is_none() {
                c.set(key.as_bytes(), 0, Bytes::from("v"));
            }
        }
        assert_eq!(c.shard_budgets(), vec![4 << 20, 4 << 20]);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["rebalance:enabled"], "0");
        assert_eq!(stats["rebalance:runs"], "0");
    }

    #[test]
    fn default_mode_never_rebalances() {
        let c = cache(BackendMode::Default);
        c.set(b"a", 0, Bytes::from("1"));
        c.rebalance_now();
        c.arbitrate_now();
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["rebalance:enabled"], "0");
        assert_eq!(stats["rebalance:runs"], "0");
        assert_eq!(stats["arbiter:enabled"], "0");
        assert_eq!(stats["arbiter:runs"], "0");
    }

    #[test]
    fn flush_resets_budgets_and_baseline() {
        let c = cache(BackendMode::Cliffhanger);
        for i in 0..5_000u32 {
            c.set(format!("k{i}").as_bytes(), 0, Bytes::from("v"));
        }
        c.rebalance_now();
        c.flush();
        assert_eq!(c.shard_budgets(), vec![2 << 20, 2 << 20]);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["curr_items"], "0");
        assert_eq!(stats["shard:0:budget"], (2u64 << 20).to_string());
    }

    #[test]
    fn stats_expose_requested_and_effective_shards() {
        // 2 MB of budget clamps a requested 8 shards to 2 (1 MB floor).
        let c = SharedCache::new(BackendConfig {
            total_bytes: 2 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 8,
            ..BackendConfig::default()
        });
        assert_eq!(c.shard_count(), 2);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["shard_count"], "2");
        assert_eq!(stats["shards_requested"], "8");
    }

    #[test]
    fn set_get_delete_roundtrip_all_modes() {
        for mode in [
            BackendMode::Default,
            BackendMode::HillClimbing,
            BackendMode::Cliffhanger,
        ] {
            let c = cache(mode);
            assert!(c.get(b"missing").is_none());
            assert!(c.set(b"hello", 7, Bytes::from("world")));
            let (flags, value) = c.get(b"hello").expect("must hit");
            assert_eq!(flags, 7);
            assert_eq!(value, Bytes::from("world"));
            assert!(c.delete(b"hello"));
            assert!(!c.delete(b"hello"));
            assert!(c.get(b"hello").is_none());
        }
    }

    #[test]
    fn add_and_replace_semantics() {
        let c = cache(BackendMode::Cliffhanger);
        assert!(c.add(b"k", 0, Bytes::from("1")));
        assert!(!c.add(b"k", 0, Bytes::from("2")), "add must not overwrite");
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("1"));
        assert!(c.replace(b"k", 0, Bytes::from("3")));
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("3"));
        assert!(!c.replace(b"absent", 0, Bytes::from("x")));
    }

    #[test]
    fn eviction_under_pressure_keeps_running() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 256 << 10,
            mode: BackendMode::Cliffhanger,
            shards: 1,
            ..BackendConfig::default()
        });
        let payload = Bytes::from(vec![0u8; 1_000]);
        for i in 0..2_000u32 {
            assert!(c.set(format!("key{i}").as_bytes(), 0, payload.clone()));
        }
        // Recent keys should be resident; the cache stays within budget.
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        let bytes: u64 = stats["bytes"].parse().unwrap();
        assert!(bytes <= 256 << 10);
        let hits_recent = (1_990..2_000)
            .filter(|i| c.get(format!("key{i}").as_bytes()).is_some())
            .count();
        assert!(
            hits_recent >= 5,
            "recent keys mostly resident, got {hits_recent}"
        );
    }

    #[test]
    fn flush_clears_everything() {
        let c = cache(BackendMode::Default);
        c.set(b"a", 0, Bytes::from("1"));
        c.flush();
        assert!(c.get(b"a").is_none());
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["curr_items"], "0");
    }

    #[test]
    fn stats_report_wire_counters() {
        let c = cache(BackendMode::HillClimbing);
        c.set(b"a", 0, Bytes::from("1"));
        c.get(b"a");
        c.get(b"b");
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["cmd_get"], "2");
        assert_eq!(stats["get_hits"], "1");
        assert_eq!(stats["get_misses"], "1");
        assert_eq!(stats["cmd_set"], "1");
        assert_eq!(stats["allocator"], "hillclimbing");
        assert_eq!(stats["shard_count"], "2");
        assert_eq!(stats["tenant_count"], "1");
    }

    #[test]
    fn per_shard_stats_sum_to_aggregates() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 16 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 4,
            ..BackendConfig::default()
        });
        assert_eq!(c.shard_count(), 4);
        for i in 0..500u32 {
            assert!(c.set(format!("key-{i}").as_bytes(), 0, Bytes::from("v")));
        }
        for i in 0..250u32 {
            c.get(format!("key-{i}").as_bytes());
            c.get(format!("absent-{i}").as_bytes());
        }
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        for counter in ["cmd_get", "cmd_set", "get_hits", "curr_items", "bytes"] {
            let total: u64 = stats[counter].parse().unwrap();
            let summed: u64 = (0..4)
                .map(|i| {
                    stats[&format!("shard:{i}:{counter}")]
                        .parse::<u64>()
                        .unwrap()
                })
                .sum();
            assert_eq!(total, summed, "{counter} must equal the per-shard sum");
        }
        // The router must actually spread keys: no shard holds everything.
        let max_shard_items: u64 = (0..4)
            .map(|i| stats[&format!("shard:{i}:curr_items")].parse().unwrap())
            .max()
            .unwrap();
        let total_items: u64 = stats["curr_items"].parse().unwrap();
        assert_eq!(total_items, 500);
        assert!(
            max_shard_items < total_items,
            "keys must be spread across shards (max shard has {max_shard_items})"
        );
    }

    #[test]
    fn shard_auto_detection_is_budget_capped() {
        let tiny = BackendConfig {
            total_bytes: 2 << 20,
            shards: 0,
            ..BackendConfig::default()
        };
        assert!(tiny.resolved_shards() <= 2, "2 MB cannot exceed 2 shards");
        let explicit = BackendConfig {
            total_bytes: 64 << 20,
            shards: 8,
            ..BackendConfig::default()
        };
        assert_eq!(explicit.resolved_shards(), 8);
        let zero = BackendConfig {
            total_bytes: 64 << 20,
            shards: 0,
            ..BackendConfig::default()
        };
        assert!(zero.resolved_shards() >= 1);
        // Tenants tighten the cap: every tenant engine needs its megabyte.
        let tenanted = BackendConfig {
            total_bytes: 8 << 20,
            shards: 8,
            tenants: vec![
                TenantSpec::new("a", 1),
                TenantSpec::new("b", 1),
                TenantSpec::new("c", 1),
            ],
            ..BackendConfig::default()
        };
        assert_eq!(tenanted.resolved_shards(), 2, "8 MB / 4 tenants / 1 MB");
    }

    #[test]
    fn shards_are_independent_for_flush_scoped_load() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 8 << 20,
            mode: BackendMode::Default,
            shards: 8,
            ..BackendConfig::default()
        });
        for i in 0..1_000u32 {
            assert!(c.set(format!("ind-{i}").as_bytes(), 0, Bytes::from("x")));
        }
        c.flush();
        for i in 0..1_000u32 {
            assert!(c.get(format!("ind-{i}").as_bytes()).is_none());
        }
    }

    #[test]
    fn tenants_resolve_and_namespace_keys() {
        let c = SharedCache::new(two_tenants(8 << 20, 2));
        assert_eq!(c.tenant_count(), 3);
        assert_eq!(c.tenant_index("default"), Some(0));
        let a = c.tenant_index("alpha").unwrap();
        let b = c.tenant_index("beta").unwrap();
        assert_eq!(c.tenant_index("gamma"), None);
        // The same wire key is three distinct items in three namespaces.
        assert!(c.set(b"k", 1, Bytes::from("default-v")));
        assert!(c.set_for(a, b"k", 2, Bytes::from("alpha-v")));
        assert!(c.set_for(b, b"k", 3, Bytes::from("beta-v")));
        assert_eq!(c.get(b"k").unwrap(), (1, Bytes::from("default-v")));
        assert_eq!(c.get_for(a, b"k").unwrap(), (2, Bytes::from("alpha-v")));
        assert_eq!(c.get_for(b, b"k").unwrap(), (3, Bytes::from("beta-v")));
        // Deleting in one namespace leaves the others.
        assert!(c.delete_for(a, b"k"));
        assert!(c.get_for(a, b"k").is_none());
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("default-v"));
        assert_eq!(c.get_for(b, b"k").unwrap().1, Bytes::from("beta-v"));
    }

    #[test]
    fn tenant_budgets_follow_weights() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 16 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            tenants: vec![TenantSpec::new("heavy", 2), TenantSpec::new("light", 1)],
            ..BackendConfig::default()
        });
        let budgets = c.tenant_budgets();
        assert_eq!(budgets.iter().sum::<u64>(), 16 << 20);
        // default:1, heavy:2, light:1 over 16 MB = 4/8/4 MB.
        assert_eq!(budgets[1], 8 << 20);
        assert_eq!(budgets[2], 4 << 20);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["tenant_count"], "3");
        assert_eq!(stats["tenant:heavy:budget"], (8u64 << 20).to_string());
    }

    #[test]
    fn flush_tenant_clears_only_that_tenant_and_conserves_budget() {
        let c = SharedCache::new(two_tenants(8 << 20, 2));
        let a = c.tenant_index("alpha").unwrap();
        let b = c.tenant_index("beta").unwrap();
        for i in 0..500u32 {
            assert!(c.set_for(a, format!("a{i}").as_bytes(), 0, Bytes::from("va")));
            assert!(c.set_for(b, format!("b{i}").as_bytes(), 0, Bytes::from("vb")));
        }
        let total_before: u64 = c.tenant_budgets().iter().sum();
        c.flush_tenant(a);
        for i in 0..500u32 {
            assert!(c.get_for(a, format!("a{i}").as_bytes()).is_none());
            assert!(
                c.get_for(b, format!("b{i}").as_bytes()).is_some(),
                "beta's keys must survive alpha's flush"
            );
        }
        assert_eq!(c.tenant_budgets().iter().sum::<u64>(), total_before);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["tenant:alpha:curr_items"], "0");
        assert_eq!(stats["tenant:beta:curr_items"], "500");
    }

    #[test]
    fn per_tenant_stats_sum_to_aggregates() {
        let c = SharedCache::new(two_tenants(8 << 20, 2));
        let a = c.tenant_index("alpha").unwrap();
        for i in 0..100u32 {
            assert!(c.set(format!("d{i}").as_bytes(), 0, Bytes::from("v")));
            assert!(c.set_for(a, format!("a{i}").as_bytes(), 0, Bytes::from("v")));
        }
        for i in 0..50u32 {
            c.get(format!("d{i}").as_bytes());
            c.get_for(a, format!("missing{i}").as_bytes());
        }
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        for counter in ["cmd_get", "cmd_set", "get_hits", "curr_items", "bytes"] {
            let total: u64 = stats[counter].parse().unwrap();
            let summed: u64 = ["default", "alpha", "beta"]
                .iter()
                .map(|name| {
                    stats[&format!("tenant:{name}:{counter}")]
                        .parse::<u64>()
                        .unwrap()
                })
                .sum();
            assert_eq!(total, summed, "{counter} must equal the per-tenant sum");
        }
        assert_eq!(stats["tenant:alpha:get_misses"], "50");
        assert_eq!(stats["tenant:default:get_hits"], "50");
        assert_eq!(stats["tenant:beta:cmd_get"], "0");
    }

    #[test]
    fn arbiter_moves_budget_toward_the_starved_tenant() {
        let total = 16u64 << 20;
        let c = SharedCache::new(BackendConfig {
            total_bytes: total,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            tenants: vec![TenantSpec::new("starved", 1), TenantSpec::new("idle", 1)],
            tenant_balance: TenantBalanceConfig {
                credit_bytes: 256 << 10,
                min_tenant_bytes: 1 << 20,
                min_gradient_gap: 4,
                ..TenantBalanceConfig::default()
            },
            ..BackendConfig::default()
        });
        let starved = c.tenant_index("starved").unwrap();
        let idle = c.tenant_index("idle").unwrap();
        // The starved tenant cycles a working set past its ~5.3 MB share —
        // sized so the cycle's reuse distance lands beyond each engine's
        // physical capacity (~9k items) but inside physical + shadow
        // (~13k): every re-request then misses the cache and hits the
        // shadow queue, the pure form of the gradient. The idle tenant
        // touches a handful of keys.
        let payload = Bytes::from(vec![0u8; 200]);
        for round in 0..12 {
            for i in 0..20_000u32 {
                let key = format!("s{i}");
                if c.get_for(starved, key.as_bytes()).is_none() {
                    c.set_for(starved, key.as_bytes(), 0, payload.clone());
                }
            }
            for i in 0..50u32 {
                let key = format!("i{i}");
                if c.get_for(idle, key.as_bytes()).is_none() {
                    c.set_for(idle, key.as_bytes(), 0, payload.clone());
                }
            }
            c.arbitrate_now();
            let _ = round;
        }
        let budgets = c.tenant_budgets();
        assert_eq!(
            budgets.iter().sum::<u64>(),
            total,
            "arbitration must conserve the total budget: {budgets:?}"
        );
        assert!(
            budgets[starved] > budgets[idle],
            "the starved tenant should have gained budget: {budgets:?}"
        );
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["arbiter:enabled"], "1");
        assert!(stats["arbiter:transfers"].parse::<u64>().unwrap() > 0);
        assert!(stats["arbiter:bytes_moved"].parse::<u64>().unwrap() > 0);
        assert_eq!(stats["tenant:starved:budget"], budgets[starved].to_string());
    }

    #[test]
    fn arbitration_survives_another_tenants_flush_storm() {
        // Regression: flush_tenant used to reset the *global* arbiter
        // baseline, so any tenant flushing more often than the arbitration
        // interval suppressed cross-tenant arbitration for everyone,
        // forever. The gradient engine re-baselines on backwards counters
        // by itself, so a flush must cost at most one observation round.
        let total = 16u64 << 20;
        let c = SharedCache::new(BackendConfig {
            total_bytes: total,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            tenants: vec![TenantSpec::new("starved", 1), TenantSpec::new("flusher", 1)],
            tenant_balance: TenantBalanceConfig {
                credit_bytes: 256 << 10,
                min_tenant_bytes: 1 << 20,
                min_gradient_gap: 4,
                ..TenantBalanceConfig::default()
            },
            ..BackendConfig::default()
        });
        let starved = c.tenant_index("starved").unwrap();
        let flusher = c.tenant_index("flusher").unwrap();
        let payload = Bytes::from(vec![0u8; 200]);
        for round in 0..12 {
            for i in 0..20_000u32 {
                let key = format!("s{i}");
                if c.get_for(starved, key.as_bytes()).is_none() {
                    c.set_for(starved, key.as_bytes(), 0, payload.clone());
                }
            }
            for i in 0..50u32 {
                c.set_for(
                    flusher,
                    format!("f{round}-{i}").as_bytes(),
                    0,
                    payload.clone(),
                );
            }
            // The storm: a flush before every arbitration round.
            c.flush_tenant(flusher);
            c.arbitrate_now();
        }
        let budgets = c.tenant_budgets();
        assert_eq!(budgets.iter().sum::<u64>(), total);
        assert!(
            budgets[starved] > budgets[flusher],
            "arbitration must keep working through the flush storm: {budgets:?}"
        );
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert!(stats["arbiter:transfers"].parse::<u64>().unwrap() > 0);
    }

    #[test]
    fn create_tenant_carves_budget_and_isolates() {
        let total = 8u64 << 20;
        let c = SharedCache::new(two_tenants(total, 2));
        assert_eq!(c.tenant_count(), 3);
        // Populate the default namespace first; the carve-out will shrink
        // its engines with real evictions.
        for i in 0..2_000u32 {
            c.set(format!("d{i}").as_bytes(), 0, Bytes::from(vec![0u8; 200]));
        }
        let gamma = c.create_tenant("gamma", 1).expect("create must succeed");
        assert_eq!(c.tenant_count(), 4);
        assert_eq!(c.tenant_index("gamma"), Some(gamma));
        // Budget conserved: the new tenant's share came out of the others.
        let budgets = c.tenant_budgets();
        assert_eq!(budgets.iter().sum::<u64>(), total, "{budgets:?}");
        assert!(budgets[gamma] > 0, "carve-out must be nonzero: {budgets:?}");
        // The new namespace works and is isolated.
        assert!(c.set_for(gamma, b"k", 1, Bytes::from("gamma-v")));
        assert_eq!(c.get_for(gamma, b"k").unwrap().1, Bytes::from("gamma-v"));
        assert!(c.get(b"k").is_none(), "default must not see gamma's key");
        // Rejections: duplicates (including built-ins), bad names, weight 0.
        assert!(c.create_tenant("gamma", 1).is_err());
        assert!(c.create_tenant("default", 1).is_err());
        assert!(c.create_tenant("bad:name", 1).is_err());
        assert!(c.create_tenant("", 1).is_err());
        assert!(c.create_tenant("fine", 0).is_err());
        assert_eq!(c.tenant_count(), 4);
        // The listing reflects the live state.
        let apps = c.app_list();
        assert_eq!(apps.len(), 4);
        assert_eq!(apps[gamma].0, "gamma");
        assert_eq!(apps[gamma].2, budgets[gamma]);
        // Stats carry the new tenant's section; a full flush returns it to
        // its carve-out split without losing the tenant.
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["tenant_count"], "4");
        assert_eq!(stats["tenant:gamma:budget"], budgets[gamma].to_string());
        c.flush();
        assert!(c.get_for(gamma, b"k").is_none());
        assert_eq!(c.tenant_budgets().iter().sum::<u64>(), total);
        assert_eq!(c.tenant_count(), 4);
    }

    #[test]
    fn created_tenant_joins_arbitration() {
        // A tenant onboarded live must be a first-class arbitration citizen:
        // starve it and the arbiter should move budget toward it. Same
        // dimensions as `arbiter_moves_budget_toward_the_starved_tenant`
        // (whose comment derives the working-set / shadow-window geometry),
        // except the starved tenant arrives via `app_create` instead of
        // deployment configuration.
        let total = 16u64 << 20;
        let c = SharedCache::new(BackendConfig {
            total_bytes: total,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            tenants: vec![TenantSpec::new("idle", 1)],
            tenant_balance: TenantBalanceConfig {
                credit_bytes: 256 << 10,
                min_tenant_bytes: 1 << 20,
                min_gradient_gap: 4,
                ..TenantBalanceConfig::default()
            },
            ..BackendConfig::default()
        });
        let idle = c.tenant_index("idle").unwrap();
        let late = c.create_tenant("latecomer", 1).unwrap();
        assert_eq!(
            c.tenant_budgets().iter().sum::<u64>(),
            total,
            "carve-out conserves the total"
        );
        let payload = Bytes::from(vec![0u8; 200]);
        for _ in 0..12 {
            for i in 0..20_000u32 {
                let key = format!("s{i}");
                if c.get_for(late, key.as_bytes()).is_none() {
                    c.set_for(late, key.as_bytes(), 0, payload.clone());
                }
            }
            for i in 0..50u32 {
                let key = format!("i{i}");
                if c.get_for(idle, key.as_bytes()).is_none() {
                    c.set_for(idle, key.as_bytes(), 0, payload.clone());
                }
            }
            c.arbitrate_now();
        }
        let budgets = c.tenant_budgets();
        assert_eq!(budgets.iter().sum::<u64>(), total);
        assert!(
            budgets[late] > budgets[idle],
            "the starved latecomer should have gained budget: {budgets:?}"
        );
    }

    #[test]
    fn arbiter_disabled_keeps_static_reservations() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 8 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            tenants: vec![TenantSpec::new("a", 1)],
            tenant_balance: TenantBalanceConfig::disabled(),
            ..BackendConfig::default()
        });
        let a = c.tenant_index("a").unwrap();
        for i in 0..20_000u32 {
            let key = format!("k{i}");
            if c.get_for(a, key.as_bytes()).is_none() {
                c.set_for(a, key.as_bytes(), 0, Bytes::from("v"));
            }
            if i % 1_000 == 0 {
                c.arbitrate_now();
            }
        }
        assert_eq!(c.tenant_budgets(), vec![4 << 20, 4 << 20]);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["arbiter:enabled"], "0");
        assert_eq!(stats["arbiter:runs"], "0");
    }

    #[test]
    fn single_tenant_server_reports_inactive_arbiter() {
        let c = cache(BackendMode::Cliffhanger);
        c.arbitrate_now();
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["arbiter:enabled"], "0", "one tenant cannot arbitrate");
        assert_eq!(stats["arbiter:runs"], "0");
    }
}
