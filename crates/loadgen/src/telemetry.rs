//! Latency telemetry — re-exported from the shared [`telemetry`] crate.
//!
//! The HDR-style log-linear [`Histogram`] and its JSON-ready
//! [`LatencySummary`] started life here as loadgen-private types. The
//! server's event loops now record per-loop service times into the same
//! recorder (so client-side and server-side quantiles share one
//! quantisation model), which is why the implementation moved to
//! `crates/telemetry`; this module keeps the historical
//! `loadgen::telemetry::*` paths working.

pub use ::telemetry::{Histogram, LatencySummary};
