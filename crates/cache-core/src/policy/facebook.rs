//! The Facebook mid-queue insertion scheme.
//!
//! "Facebook has implemented a hybrid scheme, where the first time a request
//! is inserted into the eviction queue, it is not inserted at the top of the
//! queue but in the middle" (paper §6.2); on its second hit it is promoted to
//! the top (§5.5). Single-use items therefore reach the eviction end roughly
//! twice as fast as under LRU, which protects the working set from one-hit
//! wonders.

use crate::key::Key;
use crate::lru::{HitLocation, InsertPosition, LruList};
use crate::policy::{EvictionPolicy, PolicyKind};

/// Facebook's hybrid insertion policy on top of a recency list.
#[derive(Debug, Default)]
pub struct FacebookPolicy {
    list: LruList,
}

impl FacebookPolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        FacebookPolicy {
            list: LruList::new(),
        }
    }

    /// Creates a policy with a tail region of `tail_items` items.
    pub fn with_tail_region(tail_items: usize) -> Self {
        FacebookPolicy {
            list: LruList::with_tail_region(tail_items),
        }
    }
}

impl EvictionPolicy for FacebookPolicy {
    fn access(&mut self, key: Key) -> Option<HitLocation> {
        // A hit promotes the item to the top of the queue, wherever it was.
        self.list.access(key)
    }

    fn insert(&mut self, key: Key, weight: u64) {
        // First-time (and re-admitted) items land in the middle of the queue.
        self.list.insert(key, weight, InsertPosition::Middle);
    }

    fn evict(&mut self) -> Option<(Key, u64)> {
        self.list.pop_lru()
    }

    fn remove(&mut self, key: Key) -> Option<u64> {
        self.list.remove(key)
    }

    fn contains(&self, key: Key) -> bool {
        self.list.contains(key)
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn total_weight(&self) -> u64 {
        self.list.total_weight()
    }

    fn set_tail_region(&mut self, items: usize) {
        self.list.set_tail_region(items);
    }

    fn supports_tail_region(&self) -> bool {
        true
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Facebook
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance::{basic_contract, key, no_duplicate_evictions};

    #[test]
    fn conforms_to_policy_contract() {
        basic_contract(Box::new(FacebookPolicy::new()));
        no_duplicate_evictions(Box::new(FacebookPolicy::new()));
    }

    #[test]
    fn one_hit_wonders_die_before_recently_promoted_items() {
        let mut p = FacebookPolicy::new();
        // Build a resident population that gets promoted (a hit each), so the
        // most recently promoted half sits above the queue middle.
        for i in 0..8 {
            p.insert(key(i), 1);
        }
        for i in 0..8 {
            p.access(key(i));
        }
        // A one-hit wonder enters at the middle of the queue.
        p.insert(key(100), 1);
        // Under plain LRU the wonder (most recent insertion) would outlive
        // every promoted item. Under the Facebook scheme it must be evicted
        // before the recently promoted upper half (keys 4..8).
        loop {
            let (victim, _) = p.evict().expect("wonder must eventually be evicted");
            if victim == key(100) {
                break;
            }
            assert!(
                victim.raw() < 4,
                "only items below the queue middle may be evicted before the \
                 one-hit wonder, got {victim:?}"
            );
        }
        for survivor in 4..8 {
            assert!(
                p.contains(key(survivor)),
                "recently promoted key {survivor} must outlive the one-hit wonder"
            );
        }
    }

    #[test]
    fn second_hit_promotes_to_top() {
        let mut p = FacebookPolicy::new();
        for i in 0..6 {
            p.insert(key(i), 1);
        }
        // key 1 sits at the very bottom of the queue after middle insertions;
        // a hit must promote it to the top.
        p.access(key(1));
        let mut order = Vec::new();
        while let Some((k, _)) = p.evict() {
            order.push(k.raw());
        }
        assert_eq!(
            *order.last().unwrap(),
            1,
            "promoted key must be evicted last"
        );
    }

    #[test]
    fn kind_and_tail_region() {
        let p = FacebookPolicy::with_tail_region(128);
        assert_eq!(p.kind(), PolicyKind::Facebook);
        assert!(p.supports_tail_region());
        assert!(PolicyKind::Facebook.supports_tail_region());
    }
}
