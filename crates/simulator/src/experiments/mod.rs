//! One module per table / figure of the paper's evaluation.
//!
//! Every experiment consumes an [`ExperimentContext`] (the generated
//! Memcachier-like trace split per application) and produces a
//! [`crate::report::Table`] or [`crate::report::FigureSeries`]. The
//! `paper_tables` / `paper_figures` binaries in the `bench` crate print them;
//! EXPERIMENTS.md records the measured values next to the paper's.
//!
//! | Paper artefact | Module | Function |
//! |---|---|---|
//! | Figure 1, Figure 3 | [`curves`] | [`curves::hit_rate_curve_figure`] |
//! | Figure 4 | [`curves`] | [`curves::talus_partition_figure`] |
//! | Table 1 | [`allocation`] | [`allocation::table1_slab_misses`] |
//! | Table 2 | [`allocation`] | [`allocation::table2_global_lru`] |
//! | Table 3 | [`allocation`] | [`allocation::table3_cross_app`] |
//! | Figure 2 | [`comparison`] | [`comparison::figure2_dynacache`] |
//! | Figure 6 | [`comparison`] | [`comparison::figure6_hit_rates`] |
//! | Figure 7 | [`comparison`] | [`comparison::figure7_savings`] |
//! | Headline numbers (§1, §5.2) | [`comparison`] | [`comparison::headline_summary`] |
//! | Figure 8 | [`dynamics`] | [`dynamics::figure8_memory_over_time`] |
//! | Figure 9 | [`dynamics`] | [`dynamics::figure9_convergence`] |
//! | Table 4 | [`dynamics`] | [`dynamics::table4_ablation`] |
//! | Table 5 | [`policies`] | [`policies::table5_eviction_schemes`] |
//! | Tables 6–7 | `bench` crate | `paper_tables --table 6|7` (wall-clock) |
//!
//! [`sharding`] and [`tenants`] go beyond the paper: hit rate vs shard
//! count at fixed total memory, with and without the cross-shard rebalancer
//! (the `shard_experiment` binary prints it; CI's `hit-rate-smoke` job
//! gates on it), and static per-tenant reservations vs live cross-tenant
//! arbitration (the `tenant_experiment` binary; CI's `tenant-smoke` job).

pub mod allocation;
pub mod comparison;
pub mod curves;
pub mod dynamics;
pub mod policies;
pub mod sharding;
pub mod tenants;

use crate::engine::ReplayOptions;
use cache_core::AppId;
use std::collections::BTreeMap;
use workloads::{memcachier_apps, trace_for_apps, AppProfile, MemcachierConfig, Trace};

/// The shared input of every experiment: the application profiles, their
/// traces, and the replay options derived from their reservations.
#[derive(Debug)]
pub struct ExperimentContext {
    /// The trace-generation configuration used.
    pub config: MemcachierConfig,
    /// The twenty application profiles.
    pub apps: Vec<AppProfile>,
    /// Per-application traces (same order of requests as the combined trace).
    pub traces: BTreeMap<AppId, Trace>,
    /// Fraction of each application's trace treated as warm-up when
    /// replaying (0.0 counts everything, like the paper).
    pub warmup_fraction: f64,
}

impl ExperimentContext {
    /// Generates the context from a trace configuration.
    pub fn new(config: MemcachierConfig) -> Self {
        let apps = memcachier_apps(config.scale);
        let combined = trace_for_apps(&apps, &config);
        let mut traces: BTreeMap<AppId, Trace> = BTreeMap::new();
        for app in &apps {
            traces.insert(app.app, Trace::new());
        }
        for request in combined.iter() {
            traces.entry(request.app).or_default().push(*request);
        }
        ExperimentContext {
            config,
            apps,
            traces,
            warmup_fraction: 0.0,
        }
    }

    /// The default experiment scale used by the harness binaries: large
    /// enough for the shapes to be visible, small enough to run in minutes.
    pub fn standard() -> Self {
        Self::new(MemcachierConfig {
            total_requests: 1_200_000,
            scale: 0.35,
            ..MemcachierConfig::default()
        })
    }

    /// A deliberately tiny context for unit and integration tests.
    pub fn quick() -> Self {
        Self::new(MemcachierConfig {
            total_requests: 120_000,
            scale: 0.08,
            duration_secs: 24 * 3_600,
            ..MemcachierConfig::default()
        })
    }

    /// The profile of an application by its paper number (1-based).
    pub fn app(&self, number: u32) -> &AppProfile {
        self.apps
            .iter()
            .find(|a| a.app.0 == number)
            .expect("application number out of range")
    }

    /// The trace of an application by its paper number.
    pub fn trace(&self, number: u32) -> &Trace {
        &self.traces[&AppId::new(number)]
    }

    /// Replay options for an application (reservation, slab geometry,
    /// warm-up).
    pub fn options(&self, number: u32) -> ReplayOptions {
        let app = self.app(number);
        ReplayOptions::new(app.reserved_bytes).with_warmup(self.warmup_fraction)
    }

    /// Application numbers in paper order.
    pub fn app_numbers(&self) -> Vec<u32> {
        self.apps.iter().map(|a| a.app.0).collect()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::OnceLock;

    /// A shared quick context so the experiment tests generate the trace
    /// only once.
    pub(crate) fn shared_quick_context() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(ExperimentContext::quick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_splits_traces_per_app() {
        let ctx = test_support::shared_quick_context();
        assert_eq!(ctx.apps.len(), 20);
        assert_eq!(ctx.traces.len(), 20);
        let total: usize = ctx.traces.values().map(|t| t.len()).sum();
        assert!(total > 100_000);
        // App 1 dominates; app 20 is small but present.
        assert!(ctx.trace(1).len() > ctx.trace(20).len());
        assert!(!ctx.trace(20).is_empty());
        // Options carry the reservation.
        assert_eq!(ctx.options(3).reserved_bytes, ctx.app(3).reserved_bytes);
        assert_eq!(ctx.app_numbers(), (1..=20).collect::<Vec<_>>());
    }
}
