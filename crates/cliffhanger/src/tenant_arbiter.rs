//! Cross-tenant memory arbitration (extension).
//!
//! The paper's setting is a Memcachier-style server where many applications
//! share one cache behind *static* reservations, and its §3 analysis shows
//! those reservations leave large hit-rate gains on the table (Table 3's
//! cross-application optimisation). §4.1 notes the queues Cliffhanger
//! optimises can be "a queue of an entire application" — this module is that
//! reading made operational for the live server: the per-tenant engines'
//! long shadow queues already measure each application's marginal utility of
//! memory, so the identical gradient machinery that rebalances *shards*
//! ([`crate::shard_balance`]) runs one level further up and moves budget
//! between *tenants*, globally, across every shard at once (the same
//! direction as Memshare's dynamic cross-application arbitration).
//!
//! [`TenantArbiter`] is pure decision logic, exactly like
//! [`crate::ShardRebalancer`] (which it reuses as its gradient engine —
//! tenants are its "shards"): the host samples every tenant's cumulative
//! shadow-queue hits and current budget, and applies the returned
//! [`TenantTransfer`]s however its storage is organised (the server backend
//! spreads each transfer across its shards' per-tenant engines).

use crate::config::TenantBalanceConfig;
use crate::events::{EventSink, NoopSink};
use crate::shard_balance::{ShardRebalancer, ShardSample};
use serde::{Deserialize, Serialize};

/// One tenant's cumulative counters and current budget, as observed by the
/// host at the start of an arbitration round.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TenantSample {
    /// Cumulative hill-climbing shadow-queue hits summed over every engine
    /// (all shards) of the tenant.
    pub shadow_hits: u64,
    /// The tenant's current total byte budget (all shards).
    pub budget_bytes: u64,
}

/// A proposed budget move between two tenants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantTransfer {
    /// Tenant index giving up budget.
    pub from: usize,
    /// Tenant index receiving budget.
    pub to: usize,
    /// Bytes to move.
    pub bytes: u64,
}

/// The cross-tenant hill climber.
#[derive(Debug, Clone)]
pub struct TenantArbiter {
    config: TenantBalanceConfig,
    /// The gradient engine: the PR 3 cross-shard rebalancer with tenants in
    /// the shard seats. All smoothing, hysteresis, floor and counter-reset
    /// behaviour is inherited unchanged.
    inner: ShardRebalancer,
}

impl TenantArbiter {
    /// Creates an arbiter for `tenants` tenants.
    pub fn new(tenants: usize, config: TenantBalanceConfig) -> Self {
        config.validate();
        let inner = ShardRebalancer::new(tenants, config.as_shard_balance());
        TenantArbiter { config, inner }
    }

    /// The configuration this arbiter runs with.
    pub fn config(&self) -> &TenantBalanceConfig {
        &self.config
    }

    /// Forgets the counter baseline and smoothed gradients (after a flush
    /// the cumulative counters restart from zero).
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Number of arbitration rounds observed (including no-op rounds).
    pub fn rounds(&self) -> u64 {
        self.inner.rounds()
    }

    /// Number of tenant transfers proposed so far.
    pub fn proposed_transfers(&self) -> u64 {
        self.inner.proposed_transfers()
    }

    /// Bytes proposed for transfer so far.
    pub fn proposed_bytes(&self) -> u64 {
        self.inner.proposed_bytes()
    }

    /// Runs one arbitration round over the tenants' cumulative samples and
    /// returns the proposed budget moves.
    ///
    /// Inherits every invariant of [`ShardRebalancer::rebalance`]: transfers
    /// conserve the summed budget, no donor drops below
    /// [`TenantBalanceConfig::min_tenant_bytes`], uniform gradients propose
    /// nothing, and the first round after a cold start / reset / tenant-count
    /// change only records the baseline.
    pub fn arbitrate(&mut self, samples: &[TenantSample]) -> Vec<TenantTransfer> {
        self.arbitrate_with(samples, &NoopSink)
    }

    /// Like [`TenantArbiter::arbitrate`], but narrates each proposal to
    /// `sink` as a [`crate::TransferEvent`] whose indices are *tenant*
    /// indices (the host sink maps them to tenant names), carrying the
    /// smoothed gradient evidence that justified the move.
    pub fn arbitrate_with(
        &mut self,
        samples: &[TenantSample],
        sink: &dyn EventSink,
    ) -> Vec<TenantTransfer> {
        let inner_samples: Vec<ShardSample> = samples
            .iter()
            .map(|s| ShardSample {
                shadow_hits: s.shadow_hits,
                budget_bytes: s.budget_bytes,
            })
            .collect();
        self.inner
            .rebalance_with(&inner_samples, sink)
            .into_iter()
            .map(|t| TenantTransfer {
                from: t.from,
                to: t.to,
                bytes: t.bytes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TenantBalanceConfig {
        TenantBalanceConfig {
            credit_bytes: 1 << 20,
            min_tenant_bytes: 4 << 20,
            min_gradient_gap: 8,
            hysteresis: 0.2,
            max_transfers_per_round: 1,
            ..TenantBalanceConfig::default()
        }
    }

    fn samples(shadow: &[u64], budget: u64) -> Vec<TenantSample> {
        shadow
            .iter()
            .map(|&shadow_hits| TenantSample {
                shadow_hits,
                budget_bytes: budget,
            })
            .collect()
    }

    #[test]
    fn first_round_is_baseline_then_budget_follows_demand() {
        let mut a = TenantArbiter::new(2, config());
        assert!(a.arbitrate(&samples(&[0, 0], 32 << 20)).is_empty());
        let transfers = a.arbitrate(&samples(&[9_000, 10], 32 << 20));
        assert_eq!(transfers.len(), 1);
        assert_eq!(transfers[0].to, 0, "the starved tenant wins budget");
        assert_eq!(transfers[0].from, 1);
        assert_eq!(transfers[0].bytes, 1 << 20);
        assert_eq!(a.rounds(), 2);
        assert_eq!(a.proposed_transfers(), 1);
        assert_eq!(a.proposed_bytes(), 1 << 20);
    }

    #[test]
    fn transfers_conserve_the_total_budget() {
        let mut a = TenantArbiter::new(3, config());
        a.arbitrate(&samples(&[0, 0, 0], 16 << 20));
        let s = samples(&[5_000, 100, 10], 16 << 20);
        let before: u64 = s.iter().map(|x| x.budget_bytes).sum();
        let mut budgets: Vec<u64> = s.iter().map(|x| x.budget_bytes).collect();
        for t in a.arbitrate(&s) {
            budgets[t.from] -= t.bytes;
            budgets[t.to] += t.bytes;
        }
        assert_eq!(budgets.iter().sum::<u64>(), before);
    }

    #[test]
    fn donors_never_drop_below_the_tenant_floor() {
        let cfg = config();
        let mut a = TenantArbiter::new(2, cfg.clone());
        a.arbitrate(&samples(&[0, 0], 0));
        let s: Vec<TenantSample> = vec![
            TenantSample {
                shadow_hits: 9_000,
                budget_bytes: 32 << 20,
            },
            TenantSample {
                shadow_hits: 0,
                // Exactly at the floor: cannot afford any donation.
                budget_bytes: cfg.min_tenant_bytes,
            },
        ];
        assert!(a.arbitrate(&s).is_empty(), "floored donors are protected");
    }

    #[test]
    fn disabled_reset_and_uniform_behave() {
        let mut a = TenantArbiter::new(2, config());
        a.arbitrate(&samples(&[0, 0], 32 << 20));
        a.reset();
        assert!(
            a.arbitrate(&samples(&[9_000, 0], 32 << 20)).is_empty(),
            "first round after reset only observes"
        );
        let t = a.arbitrate(&samples(&[18_000, 0], 32 << 20));
        assert!(!t.is_empty());
        // A fresh arbiter observing uniform growth proposes nothing.
        let mut u = TenantArbiter::new(2, config());
        u.arbitrate(&samples(&[0, 0], 32 << 20));
        let t = u.arbitrate(&samples(&[1_000, 1_000], 32 << 20));
        assert!(t.is_empty(), "uniform deltas must move nothing: {t:?}");
    }
}
