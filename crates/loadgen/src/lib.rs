//! # loadgen
//!
//! A memtier/mutilate-style load generator and telemetry harness for the
//! cache server — the measurement side of the paper's evaluation (Figures
//! 10–12 and Tables 6–7 are all throughput / latency / hit rate under real
//! traffic, which requires putting load on a real socket).
//!
//! * [`telemetry`] — HDR-style log-linear latency histograms; lock-free
//!   per-worker recording, merged on report.
//! * [`workload`] — adapts the `workloads` crate's key-popularity and
//!   item-size distributions into a wire-level request stream.
//! * [`runner`] — the multi-threaded closed-loop (fixed concurrency,
//!   pipelined) and open-loop (fixed arrival rate, coordinated-omission
//!   corrected) drivers.
//! * [`report`] — machine-readable JSON reports (`cliffhanger-loadgen/v1`).
//! * [`sweep`] — self-hosted runs and the 1/2/4/8 shard sweep that
//!   demonstrates the sharded backend's throughput scaling.
//! * [`scenario`] — named, phased chaos/replay scenarios (scan storms,
//!   diurnal rate swings, working-set drift, connection churn, slow-loris,
//!   tenant storms) with pass/fail invariants checked at run end
//!   (`cliffhanger-scenario/v1`).
//!
//! Run it: `cargo run --release -p loadgen -- --help`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod report;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod telemetry;
pub mod workload;

pub use report::{
    LoadReport, ServerEcho, SweepPoint, SweepReport, TenantSection, LOAD_SCHEMA, SWEEP_SCHEMA,
};
pub use runner::{run_load, LoadMode, LoadgenConfig, Pacer};
pub use scenario::{
    evaluate_invariants, named_scenario, run_scenario, scenario_names, Chaos, Invariant,
    InvariantVerdict, Phase, Scenario, ScenarioMatrixReport, ScenarioReport,
    SCENARIO_MATRIX_SCHEMA, SCENARIO_SCHEMA,
};
pub use sweep::{run_self_hosted, run_shard_sweep, SelfHostConfig};
pub use telemetry::{Histogram, LatencySummary};
pub use workload::{GenOp, RequestGen, TenantLoad, WorkloadSpec};
