//! Property-based tests of the profiling machinery: exact stack distances
//! against the naive reference, hull domination and concavity, curve
//! monotonicity and allocation conservation.

use cache_core::Key;
use profiler::curve::HitRateCurve;
use profiler::stack_distance::{NaiveStackDistance, StackDistanceTracker};
use profiler::{DynacacheSolver, LookAheadAllocator, QueueProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Fenwick-tree stack-distance tracker agrees with the naive LRU
    /// stack on every request of every trace.
    #[test]
    fn exact_tracker_matches_naive(keys in prop::collection::vec(0u16..64, 1..400)) {
        let mut exact = StackDistanceTracker::new();
        let mut naive = NaiveStackDistance::new();
        for k in keys {
            let key = Key::new(k as u64);
            prop_assert_eq!(exact.record(key), naive.record(key));
        }
        prop_assert_eq!(exact.histogram(), naive.histogram());
    }

    /// Curves built from arbitrary points are monotone, bounded and
    /// dominated by their concave hulls; the hull itself is concave.
    #[test]
    fn hull_dominates_and_is_concave(
        raw_points in prop::collection::vec((1u64..100_000, 0.0f64..1.5), 2..60),
    ) {
        let curve = HitRateCurve::from_points(raw_points);
        let hull = curve.concave_hull();
        // Monotone and within [0, 1].
        for w in curve.points().windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        for &(x, y) in curve.points() {
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(hull.value_at(x) + 1e-9 >= y, "hull below curve at {}", x);
        }
        // Hull slopes are non-increasing (concavity).
        let vertices = hull.vertices();
        for w in vertices.windows(3) {
            let s1 = (w[1].1 - w[0].1) / (w[1].0.saturating_sub(w[0].0)).max(1) as f64;
            let s2 = (w[2].1 - w[1].1) / (w[2].0.saturating_sub(w[1].0)).max(1) as f64;
            prop_assert!(s1 >= s2 - 1e-9);
        }
    }

    /// Both allocators hand out exactly the memory they were given and never
    /// produce negative or NaN predictions.
    #[test]
    fn allocators_conserve_memory(
        knees in prop::collection::vec(100u64..20_000, 1..8),
        total_mb in 1u64..32,
    ) {
        let profiles: Vec<QueueProfile> = knees
            .iter()
            .map(|&knee| {
                let points = (1..=100u64)
                    .map(|i| {
                        let x = i * 200;
                        (x, 0.95 * x as f64 / (x as f64 + knee as f64))
                    })
                    .collect();
                QueueProfile::new(HitRateCurve::from_points(points), 1.0 / knees.len() as f64, 128)
            })
            .collect();
        let total = total_mb << 20;
        let dynacache = DynacacheSolver::new(64 << 10).allocate(&profiles, total);
        prop_assert_eq!(dynacache.total_bytes(), total);
        prop_assert!(dynacache.predicted_hit_rate.is_finite());
        prop_assert!(dynacache.predicted_hit_rate >= 0.0);
        let lookahead = LookAheadAllocator::new(64 << 10).allocate(&profiles, total);
        prop_assert_eq!(lookahead.total_bytes(), total);
        prop_assert!(lookahead.predicted_hit_rate.is_finite());
    }

    /// Hit rates evaluated anywhere on a curve are within [0, 1] and
    /// non-decreasing in the queue size.
    #[test]
    fn curve_evaluation_is_monotone(
        raw_points in prop::collection::vec((1u64..10_000, 0.0f64..1.0), 2..40),
        probes in prop::collection::vec(0u64..12_000, 1..40),
    ) {
        let curve = HitRateCurve::from_points(raw_points);
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut last = 0.0;
        for p in sorted {
            let v = curve.hit_rate_at(p);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v + 1e-12 >= last);
            last = v;
        }
    }
}
