//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The build environment has no access to crates.io, so this macro is
//! written against `proc_macro` alone — no `syn`/`quote`. It supports the
//! shapes that appear in this workspace: non-generic structs (named, tuple,
//! unit) and non-generic enums (unit, tuple, and struct variants). Enums
//! are externally tagged like real serde: unit variants serialize to a
//! string, data variants to a single-entry map keyed by the variant name.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item the derive is attached to.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types (on `{name}`)");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Skips one type, stopping at a `,` that is not nested inside `<...>`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the comma-separated types of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", "),
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                entries = entries.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(f)).collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "match value {{ \
                 ::serde::Value::Seq(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({items})), \
                 other => ::std::result::Result::Err(\
                 ::serde::Error::invalid_type(\"sequence of {n}\", other)) }}",
                items = items.join(", "),
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn deserialize(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

fn named_field_init(field: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::deserialize(value.get(\"{field}\")\
         .ok_or_else(|| ::serde::Error::missing_field(\"{field}\"))?)?"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => match inner {{ \
                         ::serde::Value::Seq(items) if items.len() == {n} => \
                         ::std::result::Result::Ok({name}::{vn}({items})), \
                         other => ::std::result::Result::Err(\
                         ::serde::Error::invalid_type(\"sequence of {n}\", other)) }},",
                        items = items.join(", "),
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(inner.get(\"{f}\")\
                                 .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match value {{ \
         ::serde::Value::Str(s) => match s.as_str() {{ \
         {unit} \
         other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown variant `{{other}}` of {name}\"))) }}, \
         ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
         let (tag, inner) = &entries[0]; \
         match tag.as_str() {{ \
         {data} \
         other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown variant `{{other}}` of {name}\"))) }} }}, \
         other => ::std::result::Result::Err(\
         ::serde::Error::invalid_type(\"{name} variant\", other)) }}",
        unit = unit_arms.join(" "),
        data = data_arms.join(" "),
    )
}
