//! Regenerates every *figure* of the paper's evaluation as CSV series.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin paper_figures -- [--quick] [--figure N]... [--sweep-iters K]
//! ```
//!
//! Figures: 1 (hit-rate curve of application 3), 2 (default vs Dynacache),
//! 3 (cliff curve of application 11), 4 (concave hull + Talus partition of
//! application 19), 6 (default vs Dynacache vs Cliffhanger), 7 (miss
//! reduction and memory savings), 8 (memory over time for application 5),
//! 9 (hit-rate convergence of application 19). Figure 5 is a structural
//! diagram in the paper and has no data series; see
//! `cliffhanger::partitioned_queue` for the corresponding structure.

use simulator::experiments::comparison::{
    compare_apps, figure2_dynacache, figure6_hit_rates, figure7_savings,
};
use simulator::experiments::curves::{hit_rate_curve_figure, talus_partition_figure};
use simulator::experiments::dynamics::{figure8_memory_over_time, figure9_convergence};
use simulator::experiments::ExperimentContext;

struct Args {
    quick: bool,
    figures: Vec<u32>,
    sweep_iters: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        figures: Vec::new(),
        sweep_iters: 3,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--figure" => {
                if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                    args.figures.push(n);
                }
            }
            "--sweep-iters" => {
                if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                    args.sweep_iters = n;
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: paper_figures [--quick] [--figure N]... [--sweep-iters K]\n\
                     figures: 1 2 3 4 6 7 8 9; no --figure prints everything"
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let all = args.figures.is_empty();
    let wants = |n: u32| all || args.figures.contains(&n);

    eprintln!(
        "generating the {} Memcachier-like trace...",
        if args.quick { "quick" } else { "standard" }
    );
    let ctx = if args.quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::standard()
    };

    if wants(1) {
        println!(
            "{}\n",
            hit_rate_curve_figure(
                &ctx,
                3,
                None,
                "Figure 1: application 3, dominant slab class"
            )
        );
    }
    if wants(3) {
        println!(
            "{}\n",
            hit_rate_curve_figure(
                &ctx,
                11,
                None,
                "Figure 3: application 11, dominant slab class"
            )
        );
    }
    if wants(4) {
        let (figure, table) = talus_partition_figure(&ctx, 19);
        println!("{figure}\n");
        println!("{table}\n");
    }
    if wants(2) || wants(6) || wants(7) {
        eprintln!("running the 20-application comparison (default / Dynacache / Cliffhanger)...");
        let rows = compare_apps(&ctx);
        if wants(2) {
            println!("{}\n", figure2_dynacache(&rows));
        }
        if wants(6) {
            println!("{}\n", figure6_hit_rates(&rows));
        }
        if wants(7) {
            eprintln!("running the per-application memory sweep...");
            let (figure, _) = figure7_savings(&ctx, &rows, args.sweep_iters);
            println!("{figure}\n");
        }
    }
    if wants(8) {
        println!("{}\n", figure8_memory_over_time(&ctx, 50));
    }
    if wants(9) {
        println!("{}\n", figure9_convergence(&ctx, 50));
    }
}
