//! # cache-core
//!
//! The cache substrate used by the Cliffhanger reproduction: a Memcached-like,
//! slab-structured, multi-tenant in-memory key-value cache with pluggable
//! eviction policies and key-only *shadow queues*.
//!
//! The crate is deliberately independent of the allocation algorithms in the
//! [`cliffhanger`](../cliffhanger/index.html) crate: it exposes the queue
//! primitives (physical eviction queues with byte budgets, shadow queues with
//! half-classification, slab-class sizing, per-queue statistics) and two cache
//! organisations (slab-class caches and a global-LRU / log-structured cache),
//! while *who gets how much memory* is decided by an external allocator.
//!
//! ## Layout
//!
//! * [`key`] — compact 64-bit cache keys and byte-string hashing.
//! * [`list`] — an index-based intrusive doubly-linked list arena, the backing
//!   store for every recency-ordered queue in the crate.
//! * [`lru`] — an LRU list with O(1) access/insert/evict, byte weights and an
//!   exactly-maintained *tail region* (the "last k items" the cliff-scaling
//!   algorithm needs to observe).
//! * [`shadow`] — key-only shadow queues with half-classification (older/newer
//!   half), the paper's central measurement device.
//! * [`slab`] — Memcached-style slab-class geometry.
//! * [`policy`] — eviction policies: LRU, LFU, ARC, the Facebook mid-queue
//!   insertion scheme, LRU-K and 2Q, all behind [`policy::EvictionPolicy`].
//! * [`queue`] — a physical cache queue: a policy plus values, a byte budget
//!   and an attached shadow queue.
//! * [`store`] — a slab-class cache for a single application (first-come-
//!   first-serve by default, externally resizable per class).
//! * [`global_lru`] — the log-structured-memory model: one global LRU.
//! * [`tenant`] — a multi-tenant cache server: per-application reservations or
//!   a shared memory pool.
//! * [`stats`] — hit/miss/eviction accounting shared by all of the above.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod global_lru;
pub mod key;
pub mod list;
pub mod lru;
pub mod policy;
pub mod queue;
pub mod shadow;
pub mod slab;
pub mod stats;
pub mod store;
pub mod tenant;

pub use global_lru::GlobalLruCache;
pub use key::{hash_bytes, AppId, ClassId, Key};
pub use lru::{HitLocation, LruList};
pub use policy::{EvictionPolicy, PolicyKind};
pub use queue::{CacheQueue, GetResult, QueueConfig, SetResult};
pub use shadow::{ShadowHalf, ShadowHit, ShadowQueue};
pub use slab::SlabConfig;
pub use stats::{CacheStats, HitRatio};
pub use store::{SlabCache, SlabCacheConfig};
pub use tenant::{MultiTenantCache, TenantConfig, TenantDirectory, DEFAULT_TENANT};

/// Fixed per-item metadata overhead charged against the memory budget, in
/// bytes. Memcached charges roughly 48–56 bytes of header per item; we use a
/// single constant so byte budgets are comparable across experiments.
pub const ITEM_OVERHEAD: u64 = 48;
