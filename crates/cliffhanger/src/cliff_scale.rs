//! Algorithms 2 and 3: incremental cliff scaling.
//!
//! Each managed queue is split into a *left* and a *right* physical
//! sub-queue. Two pointers — `left_pointer` and `right_pointer`, both
//! initialised to the queue's size — search for the item counts where the
//! convex region (the cliff) begins and ends. The search signal is where
//! hits land relative to each sub-queue:
//!
//! * a hit in the 128-item shadow queue appended to a sub-queue ("right
//!   half" in the paper's terms) means there is hit mass just beyond it;
//! * a hit in the last 128 items of the sub-queue's physical queue ("left
//!   half") means the hit mass is just inside it.
//!
//! In a convex region the rate of hits to the right of a pointer exceeds the
//! rate to its left, so the right pointer walks up the cliff and the left
//! pointer walks down to its foot; on a concave curve both stay put and the
//! queue behaves exactly like an even 50/50 split — i.e. like the original,
//! unpartitioned queue (paper §4.2).
//!
//! Once the pointers bracket the cliff, Algorithm 3 computes the request
//! ratio and the physical sizes exactly as Talus does: with queue size `N`
//! and pointers `L ≤ N ≤ R`, a fraction `ratio = (R − N)/(R − L)` of requests
//! goes to the left sub-queue of `L · ratio` items and the rest to the right
//! sub-queue of `R · (1 − ratio)` items; the two physical sizes always sum to
//! `N`.

use serde::{Deserialize, Serialize};

/// A cliff-scaling event observed by the managed queue, expressed from the
/// point of view of Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointerEvent {
    /// Hit in the appended shadow queue of the **right** sub-queue
    /// (`rightShadowQueue.rightHalf`): move the right pointer right.
    RightQueueShadowHit,
    /// Hit in the tail region of the **right** sub-queue's physical queue
    /// (`rightShadowQueue.leftHalf`): move the right pointer left, but never
    /// below the queue size.
    RightQueueTailHit,
    /// Hit in the appended shadow queue of the **left** sub-queue
    /// (`leftShadowQueue.rightHalf`): move the left pointer left.
    LeftQueueShadowHit,
    /// Hit in the tail region of the **left** sub-queue's physical queue
    /// (`leftShadowQueue.leftHalf`): move the left pointer right, but never
    /// above the queue size.
    LeftQueueTailHit,
}

/// The state of Algorithms 2 and 3 for one managed queue, in items.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CliffScaler {
    /// The queue's current operating point (total items across both
    /// sub-queues).
    queue_size: f64,
    /// Pointer searching for the top of the cliff (≥ `queue_size`).
    right_pointer: f64,
    /// Pointer searching for the foot of the cliff (≤ `queue_size`).
    left_pointer: f64,
    /// Items moved per event.
    credit_items: f64,
    /// Smallest value the left pointer may take (keeps the left sub-queue
    /// functional).
    min_left_pointer: f64,
    /// Fraction of requests routed to the left sub-queue.
    ratio: f64,
    /// Number of pointer updates applied (diagnostics).
    updates: u64,
}

impl CliffScaler {
    /// Creates a scaler for a queue currently sized at `queue_size_items`,
    /// moving pointers by `credit_items` per event.
    pub fn new(queue_size_items: u64, credit_items: u64) -> Self {
        let size = queue_size_items as f64;
        CliffScaler {
            queue_size: size,
            right_pointer: size,
            left_pointer: size,
            credit_items: (credit_items.max(1)) as f64,
            min_left_pointer: (credit_items.max(1)) as f64,
            ratio: 0.5,
            updates: 0,
        }
    }

    /// The current request ratio for the left sub-queue.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The current pointers `(left, right)` in items.
    pub fn pointers(&self) -> (u64, u64) {
        (
            self.left_pointer.round() as u64,
            self.right_pointer.round() as u64,
        )
    }

    /// The queue size the scaler believes it is operating at, in items.
    pub fn queue_size(&self) -> u64 {
        self.queue_size.round() as u64
    }

    /// Physical sizes `(left_items, right_items)` from Algorithm 3; they sum
    /// to the queue size (up to rounding).
    pub fn physical_sizes(&self) -> (u64, u64) {
        // right = right_pointer * (1 - ratio); with ratio = (R - N)/(R - L)
        // the two sizes always sum to N, so the right size is derived as the
        // remainder to keep the sum exact under rounding.
        let left = self.left_pointer * self.ratio;
        let left = left.round().max(0.0) as u64;
        let total = self.queue_size.round() as u64;
        let left = left.min(total);
        (left, total - left)
    }

    /// Number of pointer updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Whether the pointers have detected (and are straddling) a cliff.
    pub fn is_scaling_a_cliff(&self) -> bool {
        self.right_pointer - self.queue_size >= self.credit_items
            && self.queue_size - self.left_pointer >= self.credit_items
    }

    /// Informs the scaler that the hill-climbing layer changed the queue's
    /// total size. Pointers are clamped so the invariants
    /// `left ≤ size ≤ right` continue to hold.
    pub fn set_queue_size(&mut self, items: u64) {
        self.queue_size = items as f64;
        if self.right_pointer < self.queue_size {
            self.right_pointer = self.queue_size;
        }
        if self.left_pointer > self.queue_size {
            self.left_pointer = self.queue_size;
        }
        self.recompute_ratio();
    }

    /// Applies one event (Algorithm 2) and recomputes the ratio
    /// (Algorithm 3).
    pub fn on_event(&mut self, event: PointerEvent) {
        match event {
            PointerEvent::RightQueueShadowHit => {
                self.right_pointer += self.credit_items;
            }
            PointerEvent::RightQueueTailHit => {
                if self.right_pointer - self.credit_items >= self.queue_size {
                    self.right_pointer -= self.credit_items;
                }
            }
            PointerEvent::LeftQueueShadowHit => {
                // The floor keeps the left sub-queue functional, but must
                // never push the pointer above the (possibly very small)
                // queue size.
                let floor = self.min_left_pointer.min(self.queue_size);
                self.left_pointer = (self.left_pointer - self.credit_items).max(floor);
            }
            PointerEvent::LeftQueueTailHit => {
                if self.left_pointer + self.credit_items <= self.queue_size {
                    self.left_pointer += self.credit_items;
                }
            }
        }
        self.updates += 1;
        self.recompute_ratio();
    }

    /// Algorithm 3: `ratio = distanceRight / (distanceRight + distanceLeft)`,
    /// falling back to an even split only when *both* pointers sit on the
    /// operating point (where `left = N·0.5` under 50/50 routing is the
    /// benign unpartitioned-by-symmetry state).
    ///
    /// The formula must also govern the one-sided cases: Talus's physical
    /// sizes are `left = L·ratio`, and its invariant
    /// `ratio·L + (1-ratio)·R = N` only holds with the true ratio. Forcing
    /// 0.5 when just the left pointer had moved (the old fallback) routed
    /// half the traffic into a partition holding `L/2 < N/2` items —
    /// eviction churn then fed the left shadow queue, walked the left
    /// pointer further down, and the spiral pinned the queue's hit rate at
    /// a fraction of its potential no matter how much budget `grow_total`
    /// added. With the true formula, `R == N` gives ratio 0 — an
    /// unpartitioned queue — which is what a pointer that never found a
    /// cliff top means.
    fn recompute_ratio(&mut self) {
        let distance_right = self.right_pointer - self.queue_size;
        let distance_left = self.queue_size - self.left_pointer;
        self.ratio = if distance_right + distance_left > 0.0 {
            distance_right / (distance_right + distance_left)
        } else {
            0.5
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_an_even_split() {
        let s = CliffScaler::new(8_000, 16);
        assert_eq!(s.ratio(), 0.5);
        assert_eq!(s.pointers(), (8_000, 8_000));
        let (l, r) = s.physical_sizes();
        assert_eq!(l + r, 8_000);
        assert_eq!(l, 4_000);
        assert!(!s.is_scaling_a_cliff());
    }

    #[test]
    fn reproduces_the_papers_partition_when_pointers_reach_the_anchors() {
        // Drive the pointers to the paper's Figure 4 anchors (2000 and
        // 13500) and check the resulting split: 48%/52% of requests,
        // 957 / 7043 items.
        let mut s = CliffScaler::new(8_000, 50);
        while s.pointers().1 < 13_500 {
            s.on_event(PointerEvent::RightQueueShadowHit);
        }
        while s.pointers().0 > 2_000 {
            s.on_event(PointerEvent::LeftQueueShadowHit);
        }
        assert!(s.is_scaling_a_cliff());
        assert!((s.ratio() - 0.478).abs() < 0.01, "ratio = {}", s.ratio());
        let (left, right) = s.physical_sizes();
        assert!((left as i64 - 957).abs() <= 30, "left = {left}");
        assert!((right as i64 - 7_043).abs() <= 30, "right = {right}");
        assert_eq!(left + right, 8_000);
    }

    #[test]
    fn concave_signals_keep_the_even_split() {
        // On a concave curve hits land in the physical tails more often than
        // in the appended shadows; tail hits alone must never move the
        // pointers away from the operating point.
        let mut s = CliffScaler::new(5_000, 10);
        for _ in 0..1_000 {
            s.on_event(PointerEvent::RightQueueTailHit);
            s.on_event(PointerEvent::LeftQueueTailHit);
        }
        assert_eq!(s.pointers(), (5_000, 5_000));
        assert_eq!(s.ratio(), 0.5);
        let (l, r) = s.physical_sizes();
        assert_eq!((l, r), (2_500, 2_500));
    }

    #[test]
    fn pointer_guards_hold() {
        let mut s = CliffScaler::new(1_000, 100);
        // The right pointer can move right and back, but never below the
        // queue size.
        s.on_event(PointerEvent::RightQueueShadowHit);
        s.on_event(PointerEvent::RightQueueTailHit);
        s.on_event(PointerEvent::RightQueueTailHit);
        assert_eq!(s.pointers().1, 1_000);
        // The left pointer can move left and back, but never above the queue
        // size and never below its floor.
        s.on_event(PointerEvent::LeftQueueShadowHit);
        s.on_event(PointerEvent::LeftQueueTailHit);
        s.on_event(PointerEvent::LeftQueueTailHit);
        assert_eq!(s.pointers().0, 1_000);
        for _ in 0..100 {
            s.on_event(PointerEvent::LeftQueueShadowHit);
        }
        assert!(s.pointers().0 >= 100, "left pointer floor violated");
    }

    #[test]
    fn physical_sizes_always_sum_to_queue_size() {
        let mut s = CliffScaler::new(10_000, 37);
        let events = [
            PointerEvent::RightQueueShadowHit,
            PointerEvent::LeftQueueShadowHit,
            PointerEvent::RightQueueTailHit,
            PointerEvent::LeftQueueTailHit,
        ];
        for i in 0..10_000 {
            s.on_event(events[i % events.len()]);
            let (l, r) = s.physical_sizes();
            assert_eq!(l + r, 10_000, "at update {i}");
        }
        assert_eq!(s.updates(), 10_000);
    }

    #[test]
    fn resizing_the_queue_clamps_pointers() {
        let mut s = CliffScaler::new(8_000, 100);
        for _ in 0..30 {
            s.on_event(PointerEvent::RightQueueShadowHit);
            s.on_event(PointerEvent::LeftQueueShadowHit);
        }
        let (l0, r0) = s.pointers();
        assert!(l0 < 8_000 && r0 > 8_000);
        // Shrink the queue below the left pointer: it must be clamped.
        s.set_queue_size(4_000);
        let (l1, r1) = s.pointers();
        assert!(l1 <= 4_000);
        assert!(r1 >= 4_000);
        let (pl, pr) = s.physical_sizes();
        assert_eq!(pl + pr, 4_000);
        // Grow it past the right pointer: also clamped.
        s.set_queue_size(20_000);
        let (_, r2) = s.pointers();
        assert!(r2 >= 20_000);
    }

    #[test]
    fn one_sided_pointer_keeps_the_talus_invariant() {
        // Regression: only the left pointer moves (churn without a detected
        // cliff top). The old fallback forced ratio 0.5 while the physical
        // left size was L/2 < N/2, violating ratio*L + (1-ratio)*R = N and
        // routing half the traffic into a shrunken partition. The true
        // formula gives ratio 0 — an unpartitioned queue.
        let mut s = CliffScaler::new(8_000, 100);
        for _ in 0..30 {
            s.on_event(PointerEvent::LeftQueueShadowHit);
        }
        assert_eq!(s.ratio(), 0.0, "R == N must route everything right");
        let (l, r) = s.physical_sizes();
        assert_eq!(l, 0, "no items may be stranded in the unrouted partition");
        assert_eq!(r, 8_000);
        // The mirror image: only the right pointer moved; everything routes
        // left, which (L == N) then holds the whole queue.
        let mut s = CliffScaler::new(8_000, 100);
        for _ in 0..30 {
            s.on_event(PointerEvent::RightQueueShadowHit);
        }
        assert_eq!(s.ratio(), 1.0);
        let (l, r) = s.physical_sizes();
        assert_eq!(l, 8_000);
        assert_eq!(r, 0);
        // Once both pointers bracket a cliff, the interpolated split also
        // satisfies the invariant: ratio*L + (1-ratio)*R == N.
        s.on_event(PointerEvent::LeftQueueShadowHit);
        let (dr, dl) = (3_000.0, 100.0);
        assert!((s.ratio() - dr / (dr + dl)).abs() < 1e-9);
        let (l, r) = s.physical_sizes();
        assert_eq!(l + r, 8_000);
        let n = s.ratio() * 7_900.0 + (1.0 - s.ratio()) * 11_000.0;
        assert!((n - 8_000.0).abs() < 1.0, "invariant violated: {n}");
    }

    #[test]
    fn ratio_moves_towards_the_nearer_anchor() {
        // With the right pointer much farther away than the left pointer,
        // most requests go to the left queue (ratio > 0.5), matching
        // Algorithm 3's inverse-distance weighting.
        let mut s = CliffScaler::new(1_000, 100);
        for _ in 0..50 {
            s.on_event(PointerEvent::RightQueueShadowHit); // right -> 6000
        }
        for _ in 0..2 {
            s.on_event(PointerEvent::LeftQueueShadowHit); // left -> 800
        }
        assert!(s.ratio() > 0.9, "ratio = {}", s.ratio());
        let (l, r) = s.physical_sizes();
        assert!(l < 1_000 && r > 0);
        assert_eq!(l + r, 1_000);
    }
}
