//! Concave (upper) hulls of hit-rate curves.
//!
//! Talus achieves, for any queue size, the hit rate of the *concave hull* of
//! the queue's hit-rate curve by splitting the queue in two and interpolating
//! between two well-chosen points (paper §4.2, Figure 4). This module
//! computes that hull and exposes the anchor points Talus needs.

use crate::curve::HitRateCurve;
use serde::{Deserialize, Serialize};

/// The concave hull of a hit-rate curve: the smallest concave function that
/// dominates the curve on `[0, max_items]`, anchored at `(0, 0)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConcaveHull {
    /// Hull vertices, strictly increasing in items, starting at `(0, 0)`.
    vertices: Vec<(u64, f64)>,
}

impl ConcaveHull {
    /// Computes the concave hull of a curve.
    pub fn of_curve(curve: &HitRateCurve) -> Self {
        let mut points: Vec<(u64, f64)> = Vec::with_capacity(curve.points().len() + 1);
        points.push((0, 0.0));
        points.extend_from_slice(curve.points());
        Self::of_points(points)
    }

    /// Computes the concave hull of arbitrary `(items, rate)` points
    /// (assumed sorted by items, deduplicated).
    pub fn of_points(points: Vec<(u64, f64)>) -> Self {
        // Andrew's monotone chain, upper hull only: keep turning clockwise.
        let mut hull: Vec<(u64, f64)> = Vec::with_capacity(points.len());
        for p in points {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                if cross(a, b, p) >= 0.0 {
                    // b is below or on the segment a->p: not a hull vertex.
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
        if hull.is_empty() {
            hull.push((0, 0.0));
        }
        ConcaveHull { vertices: hull }
    }

    /// The hull vertices.
    pub fn vertices(&self) -> &[(u64, f64)] {
        &self.vertices
    }

    /// Evaluates the hull at `items` (linear interpolation between vertices,
    /// flat beyond the last vertex).
    pub fn value_at(&self, items: u64) -> f64 {
        if self.vertices.is_empty() {
            return 0.0;
        }
        if items <= self.vertices[0].0 {
            return if self.vertices[0].0 == 0 {
                self.vertices[0].1
            } else {
                self.vertices[0].1 * items as f64 / self.vertices[0].0 as f64
            };
        }
        for w in self.vertices.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if items <= x1 {
                let t = (items - x0) as f64 / (x1 - x0) as f64;
                return y0 + t * (y1 - y0);
            }
        }
        self.vertices.last().unwrap().1
    }

    /// The hull segment that spans `items`: the two vertices `(a, b)` such
    /// that `a.0 <= items <= b.0`, or `None` if `items` lies beyond the hull.
    ///
    /// These are exactly the Talus anchor points: when the underlying curve
    /// is below the hull at `items`, operating two sub-queues that simulate
    /// sizes `a.0` and `b.0` achieves the hull's (higher) hit rate.
    pub fn bracketing_segment(&self, items: u64) -> Option<((u64, f64), (u64, f64))> {
        for w in self.vertices.windows(2) {
            if w[0].0 <= items && items <= w[1].0 {
                return Some((w[0], w[1]));
            }
        }
        None
    }

    /// Whether `items` falls strictly inside a hull segment whose interior
    /// lies above the curve by more than `tolerance` — i.e. inside a
    /// performance cliff that Talus-style partitioning can flatten.
    pub fn in_cliff_region(&self, curve: &HitRateCurve, items: u64, tolerance: f64) -> bool {
        self.value_at(items) - curve.hit_rate_at(items) > tolerance
    }
}

/// Cross product of (b - a) x (p - a) in the (items, rate) plane, with items
/// cast to f64. Positive when the three points turn counter-clockwise.
fn cross(a: (u64, f64), b: (u64, f64), p: (u64, f64)) -> f64 {
    let (ax, ay) = (a.0 as f64, a.1);
    let (bx, by) = (b.0 as f64, b.1);
    let (px, py) = (p.0 as f64, p.1);
    (bx - ax) * (py - ay) - (by - ay) * (px - ax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::cliff_curve;

    #[test]
    fn hull_of_concave_curve_is_the_curve() {
        let curve =
            HitRateCurve::from_points(vec![(100, 0.4), (200, 0.6), (400, 0.75), (800, 0.8)]);
        let hull = curve.concave_hull();
        for probe in [50u64, 100, 150, 300, 600, 800] {
            assert!(
                (hull.value_at(probe) - curve.hit_rate_at(probe)).abs() < 1e-9,
                "hull must coincide with a concave curve at {probe}"
            );
        }
    }

    #[test]
    fn hull_dominates_cliff_curve() {
        let curve = cliff_curve(10_000, 0.8);
        let hull = curve.concave_hull();
        for probe in (500..20_000).step_by(500) {
            assert!(
                hull.value_at(probe) + 1e-9 >= curve.hit_rate_at(probe),
                "hull below curve at {probe}"
            );
        }
        // In the middle of the cliff the hull is far above the curve.
        assert!(hull.value_at(8_000) - curve.hit_rate_at(8_000) > 0.3);
        assert!(hull.in_cliff_region(&curve, 8_000, 0.05));
        assert!(!hull.in_cliff_region(&curve, 19_000, 0.05));
    }

    #[test]
    fn hull_is_concave() {
        let curve = cliff_curve(5_000, 0.9);
        let hull = curve.concave_hull();
        let v = hull.vertices();
        for w in v.windows(3) {
            let s1 = (w[1].1 - w[0].1) / (w[1].0 - w[0].0) as f64;
            let s2 = (w[2].1 - w[1].1) / (w[2].0 - w[1].0) as f64;
            assert!(s1 >= s2 - 1e-12, "hull slopes must be non-increasing");
        }
        assert_eq!(v[0], (0, 0.0));
    }

    #[test]
    fn bracketing_segment_spans_the_cliff() {
        let curve = cliff_curve(10_000, 0.8);
        let hull = curve.concave_hull();
        let (a, b) = hull.bracketing_segment(8_000).expect("inside hull range");
        assert!(a.0 < 8_000 && 8_000 < b.0);
        // The right anchor should be at or beyond the top of the cliff.
        assert!(b.0 >= 10_000);
        assert!(hull.bracketing_segment(10_000_000).is_none());
    }

    #[test]
    fn value_beyond_last_vertex_is_flat() {
        let curve = HitRateCurve::from_points(vec![(10, 0.5)]);
        let hull = curve.concave_hull();
        assert!((hull.value_at(10_000) - 0.5).abs() < 1e-12);
        assert!((hull.value_at(5) - 0.25).abs() < 1e-12);
    }
}
