//! Hit-rate curves.
//!
//! A hit-rate curve `h(c)` gives the fraction of requests an LRU queue of
//! `c` items would hit (paper Figure 1). Curves are constructed from
//! stack-distance histograms ([`crate::stack_distance`]) or from arbitrary
//! measured points, and support the operations the allocation baselines
//! need: evaluation, gradients, concavity checks and cliff detection.

use crate::hull::ConcaveHull;
use crate::stack_distance::StackDistanceHistogram;
use serde::{Deserialize, Serialize};

/// A non-decreasing hit-rate curve over queue sizes measured in items.
///
/// Internally the curve is a set of sample points `(items, hit_rate)` with
/// linear interpolation between them, `h(0) = 0`, and a flat extrapolation
/// beyond the last point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct HitRateCurve {
    /// Sample points, strictly increasing in items.
    points: Vec<(u64, f64)>,
}

impl HitRateCurve {
    /// Builds a curve from explicit `(items, hit_rate)` samples.
    ///
    /// Points are sorted by items; duplicate item counts keep the last value;
    /// hit rates are clamped to `[0, 1]` and made non-decreasing (a hit-rate
    /// curve is monotone by construction).
    pub fn from_points(mut points: Vec<(u64, f64)>) -> Self {
        points.sort_by_key(|&(x, _)| x);
        points.dedup_by_key(|&mut (x, _)| x);
        let mut running_max: f64 = 0.0;
        for p in &mut points {
            p.1 = p.1.clamp(0.0, 1.0).max(running_max);
            running_max = p.1;
        }
        HitRateCurve { points }
    }

    /// Builds the exact curve implied by a stack-distance histogram: the hit
    /// rate at `c` items is the fraction of requests with distance `≤ c`.
    pub fn from_histogram(histogram: &StackDistanceHistogram) -> Self {
        let total = histogram.total();
        if total == 0 {
            return HitRateCurve::default();
        }
        let mut points = Vec::with_capacity(histogram.max_distance());
        let mut cumulative = 0u64;
        for d in 1..=histogram.max_distance() {
            let count = histogram.count_at(d);
            if count == 0 {
                continue;
            }
            cumulative += count;
            points.push((d as u64, cumulative as f64 / total as f64));
        }
        if points.is_empty() {
            points.push((0, 0.0));
        }
        HitRateCurve { points }
    }

    /// The sample points of the curve.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The largest sampled queue size.
    pub fn max_items(&self) -> u64 {
        self.points.last().map(|&(x, _)| x).unwrap_or(0)
    }

    /// The hit rate at the largest sampled size (the curve's plateau).
    pub fn max_hit_rate(&self) -> f64 {
        self.points.last().map(|&(_, y)| y).unwrap_or(0.0)
    }

    /// Evaluates the curve at `items` (linear interpolation; flat beyond the
    /// last sample; 0 at 0 items).
    pub fn hit_rate_at(&self, items: u64) -> f64 {
        if self.points.is_empty() || items == 0 {
            return 0.0;
        }
        let mut prev = (0u64, 0.0f64);
        for &(x, y) in &self.points {
            if items == x {
                return y;
            }
            if items < x {
                let span = (x - prev.0) as f64;
                if span == 0.0 {
                    return y;
                }
                let t = (items - prev.0) as f64 / span;
                return prev.1 + t * (y - prev.1);
            }
            prev = (x, y);
        }
        prev.1
    }

    /// Local gradient (hits per item) around `items`, measured over a window
    /// of `window` items to the right — the quantity shadow-queue hit rates
    /// approximate (paper §3.4).
    pub fn gradient_at(&self, items: u64, window: u64) -> f64 {
        let window = window.max(1);
        (self.hit_rate_at(items + window) - self.hit_rate_at(items)) / window as f64
    }

    /// Discrete second derivative around `items` over a window. Positive
    /// values indicate a convex region, i.e. a performance cliff (§4.2).
    pub fn second_derivative_at(&self, items: u64, window: u64) -> f64 {
        let window = window.max(1);
        let left = self.hit_rate_at(items.saturating_sub(window));
        let mid = self.hit_rate_at(items);
        let right = self.hit_rate_at(items + window);
        (right - 2.0 * mid + left) / (window as f64 * window as f64)
    }

    /// Whether the curve is concave everywhere (within `tolerance` of hit
    /// rate), checked across its sample points.
    pub fn is_concave(&self, tolerance: f64) -> bool {
        let hull = self.concave_hull();
        self.points
            .iter()
            .all(|&(x, y)| hull.value_at(x) - y <= tolerance)
    }

    /// Whether the curve has a performance cliff: a region where it falls
    /// below its concave hull by more than `threshold` of hit rate.
    pub fn has_cliff(&self, threshold: f64) -> bool {
        !self.is_concave(threshold)
    }

    /// The concave (upper) hull of the curve.
    pub fn concave_hull(&self) -> ConcaveHull {
        ConcaveHull::of_curve(self)
    }

    /// Downsamples the curve to at most `max_points` samples (keeping the
    /// first and last), which bounds the cost of solver sweeps on very long
    /// traces.
    pub fn downsample(&self, max_points: usize) -> HitRateCurve {
        if self.points.len() <= max_points || max_points < 2 {
            return self.clone();
        }
        let stride = (self.points.len() - 1) as f64 / (max_points - 1) as f64;
        let mut points = Vec::with_capacity(max_points);
        for i in 0..max_points {
            let idx = ((i as f64 * stride).round() as usize).min(self.points.len() - 1);
            points.push(self.points[idx]);
        }
        points.dedup_by_key(|&mut (x, _)| x);
        HitRateCurve { points }
    }

    /// Scales the item axis by `bytes_per_item`, producing `(bytes, rate)`
    /// points — convenient when reporting byte-based allocations.
    pub fn to_byte_points(&self, bytes_per_item: u64) -> Vec<(u64, f64)> {
        self.points
            .iter()
            .map(|&(x, y)| (x * bytes_per_item, y))
            .collect()
    }
}

/// Builds the canonical cliff-shaped curve used in examples and tests: close
/// to zero hit rate until `cliff_at` items, then a jump to `top` (the
/// sequential-scan pattern of paper §3.5).
pub fn cliff_curve(cliff_at: u64, top: f64) -> HitRateCurve {
    HitRateCurve::from_points(vec![
        (1, 0.005),
        (cliff_at.saturating_sub(1).max(2), 0.02),
        (cliff_at.max(3), top * 0.98),
        (cliff_at.max(3) * 2, top),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concave_points() -> Vec<(u64, f64)> {
        vec![
            (100, 0.4),
            (200, 0.6),
            (400, 0.75),
            (800, 0.8),
            (1600, 0.82),
        ]
    }

    #[test]
    fn interpolation_and_extrapolation() {
        let c = HitRateCurve::from_points(concave_points());
        assert_eq!(c.hit_rate_at(0), 0.0);
        assert!((c.hit_rate_at(100) - 0.4).abs() < 1e-12);
        assert!((c.hit_rate_at(150) - 0.5).abs() < 1e-12);
        assert!((c.hit_rate_at(1_000_000) - 0.82).abs() < 1e-12);
        // Between 0 and the first point the curve rises linearly from 0.
        assert!((c.hit_rate_at(50) - 0.2).abs() < 1e-12);
        assert_eq!(c.max_items(), 1600);
        assert!((c.max_hit_rate() - 0.82).abs() < 1e-12);
    }

    #[test]
    fn from_histogram_matches_cumulative_fractions() {
        let mut h = StackDistanceHistogram::new();
        for _ in 0..5 {
            h.record(1);
        }
        for _ in 0..3 {
            h.record(10);
        }
        for _ in 0..2 {
            h.record_cold();
        }
        let c = HitRateCurve::from_histogram(&h);
        assert!((c.hit_rate_at(1) - 0.5).abs() < 1e-12);
        assert!((c.hit_rate_at(9) - 0.5).abs() > 0.0); // interpolated region
        assert!((c.hit_rate_at(10) - 0.8).abs() < 1e-12);
        assert!((c.hit_rate_at(100) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_gives_empty_curve() {
        let h = StackDistanceHistogram::new();
        let c = HitRateCurve::from_histogram(&h);
        assert_eq!(c.hit_rate_at(100), 0.0);
        assert_eq!(c.max_items(), 0);
    }

    #[test]
    fn points_are_normalised() {
        let c = HitRateCurve::from_points(vec![(200, 0.3), (100, 0.9), (300, 1.7), (200, 0.5)]);
        // Sorted, deduped, clamped and made monotone.
        let points = c.points();
        assert_eq!(points[0].0, 100);
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(points.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)));
    }

    #[test]
    fn gradient_is_positive_and_diminishing_on_concave_curve() {
        let c = HitRateCurve::from_points(concave_points());
        let g1 = c.gradient_at(100, 50);
        let g2 = c.gradient_at(400, 50);
        let g3 = c.gradient_at(1000, 50);
        assert!(g1 > g2 && g2 > g3);
        assert!(g3 >= 0.0);
    }

    #[test]
    fn concavity_and_cliff_detection() {
        let concave = HitRateCurve::from_points(concave_points());
        assert!(concave.is_concave(1e-9));
        assert!(!concave.has_cliff(0.01));

        let cliff = cliff_curve(10_000, 0.8);
        assert!(cliff.has_cliff(0.05));
        assert!(!cliff.is_concave(0.05));
        // The second derivative is positive just before the cliff.
        assert!(cliff.second_derivative_at(9_000, 500) > 0.0);
    }

    #[test]
    fn downsample_keeps_endpoints_and_shape() {
        let points: Vec<(u64, f64)> = (1..=1000)
            .map(|i| (i, (i as f64 / 1000.0).sqrt()))
            .collect();
        let c = HitRateCurve::from_points(points);
        let d = c.downsample(50);
        assert!(d.points().len() <= 50);
        assert_eq!(d.points().first().unwrap().0, 1);
        assert_eq!(d.points().last().unwrap().0, 1000);
        for probe in [10u64, 100, 500, 900] {
            assert!((d.hit_rate_at(probe) - c.hit_rate_at(probe)).abs() < 0.05);
        }
    }

    #[test]
    fn byte_points_scale_axis() {
        let c = HitRateCurve::from_points(vec![(10, 0.5), (20, 0.8)]);
        let b = c.to_byte_points(128);
        assert_eq!(b, vec![(1280, 0.5), (2560, 0.8)]);
    }
}
