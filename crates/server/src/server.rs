//! The TCP listener and per-connection protocol loop.

use crate::backend::{BackendConfig, SharedCache};
use crate::protocol::{
    encode_response, parse_command, Command, ParseOutcome, Response, StoreVerb, Value,
};
use crate::threadpool::ThreadPool;
use bytes::BytesMut;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub addr: String,
    /// Number of connection-handling worker threads. Must be at least 1;
    /// [`CacheServer::start`] rejects 0 with [`std::io::ErrorKind::InvalidInput`].
    pub workers: usize,
    /// Backend (cache) configuration.
    pub backend: BackendConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            backend: BackendConfig::default(),
        }
    }
}

/// Live-connection registry: socket handles for every in-flight connection,
/// so `shutdown` can unblock handlers parked in `read`.
#[derive(Default)]
struct ConnectionRegistry {
    next_id: AtomicU64,
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnectionRegistry {
    /// Registers a connection; returns the token to deregister it with.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().remove(&id);
    }

    /// Shuts down every registered socket, unblocking its handler.
    fn shutdown_all(&self) {
        for stream in self.streams.lock().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A running cache server.
pub struct CacheServer {
    local_addr: SocketAddr,
    cache: Arc<SharedCache>,
    shutdown: Arc<AtomicBool>,
    connections: Arc<ConnectionRegistry>,
    accept_thread: Option<JoinHandle<()>>,
    /// Held here (not on the acceptor thread) so `shutdown` can close live
    /// sockets *before* waiting for the handlers to drain.
    pool: Option<Arc<ThreadPool>>,
}

impl CacheServer {
    /// Binds and starts serving in background threads.
    ///
    /// Returns `InvalidInput` if `config.workers == 0` — a silent clamp
    /// would hide a misconfigured deployment behind a one-thread server.
    pub fn start(config: ServerConfig) -> std::io::Result<CacheServer> {
        if config.workers == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "ServerConfig::workers must be at least 1 (got 0); \
                 size it to the expected number of concurrent connections",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = Arc::new(SharedCache::new(config.backend.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(ConnectionRegistry::default());
        let pool = Arc::new(ThreadPool::new(config.workers));

        let accept_cache = Arc::clone(&cache);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_connections = Arc::clone(&connections);
        let accept_pool = Arc::clone(&pool);
        let accept_thread = std::thread::Builder::new()
            .name("cache-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let cache = Arc::clone(&accept_cache);
                            let registry = Arc::clone(&accept_connections);
                            // An unregistered connection could never be
                            // unblocked by shutdown, so refuse it rather
                            // than risk a handler that outlives the server
                            // (register only fails under fd exhaustion,
                            // where shedding load is the right call anyway).
                            let Some(id) = registry.register(&stream) else {
                                drop(stream);
                                continue;
                            };
                            accept_pool.execute(move || {
                                handle_connection(stream, cache);
                                registry.deregister(id);
                            });
                        }
                        Err(_) => break,
                    }
                }
            })?;

        Ok(CacheServer {
            local_addr,
            cache,
            shutdown,
            connections,
            accept_thread: Some(accept_thread),
            pool: Some(pool),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared cache (e.g. for out-of-band statistics in benchmarks).
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// Stops accepting connections, closes live connections after their
    /// in-flight command, and joins every server thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // The acceptor is gone, so no new registrations can race with the
        // sweep: every live handler's socket gets shut down, which makes its
        // blocking read return and the handler exit after the command it is
        // currently executing.
        self.connections.shutdown_all();
        // Dropping the last pool handle joins the worker threads.
        self.pool.take();
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flush the accumulated response bytes above this size even mid-batch, so
/// a deeply pipelined connection cannot balloon the reply buffer.
const OUT_FLUSH_BYTES: usize = 256 * 1024;

/// Serves one connection until EOF, an I/O error, socket shutdown or `quit`.
fn handle_connection(mut stream: TcpStream, cache: Arc<SharedCache>) {
    let _ = stream.set_nodelay(true);
    let mut buffer = BytesMut::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    let mut out = Vec::with_capacity(16 * 1024);
    // The application namespace this session runs in; `app <name>` switches
    // it, and a connection that never sends `app` stays on the default
    // tenant (index 0) — the exact pre-extension behaviour.
    let mut tenant: usize = 0;
    loop {
        // Drain every complete command currently buffered, accumulating the
        // responses so a pipelined batch goes out in few writes.
        out.clear();
        out.shrink_to(OUT_FLUSH_BYTES);
        loop {
            match parse_command(&mut buffer) {
                ParseOutcome::Complete(Command::Quit) => {
                    let _ = stream.write_all(&out);
                    return;
                }
                ParseOutcome::Complete(command) => {
                    let (response, suppress) = execute(&command, &cache, &mut tenant);
                    if !suppress {
                        encode_response(&response, &mut out);
                    }
                }
                ParseOutcome::Invalid(message) => {
                    encode_response(&Response::ClientError(message), &mut out);
                }
                ParseOutcome::Incomplete => break,
            }
            if out.len() >= OUT_FLUSH_BYTES {
                if stream.write_all(&out).is_err() {
                    return;
                }
                out.clear();
            }
        }
        if !out.is_empty() && stream.write_all(&out).is_err() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
    }
}

/// Executes a command against the cache in the session's tenant namespace;
/// returns the response and whether the reply should be suppressed
/// (`noreply`). `app <name>` mutates the session's tenant.
fn execute(command: &Command, cache: &SharedCache, tenant: &mut usize) -> (Response, bool) {
    match command {
        Command::Get { keys } => {
            let values = keys
                .iter()
                .filter_map(|key| {
                    cache.get_for(*tenant, key).map(|(flags, data)| Value {
                        key: key.clone(),
                        flags,
                        data,
                    })
                })
                .collect();
            (Response::Values(values), false)
        }
        Command::Store {
            verb,
            key,
            flags,
            data,
            noreply,
            ..
        } => {
            let stored = match verb {
                StoreVerb::Set => cache.set_for(*tenant, key, *flags, data.clone()),
                StoreVerb::Add => cache.add_for(*tenant, key, *flags, data.clone()),
                StoreVerb::Replace => cache.replace_for(*tenant, key, *flags, data.clone()),
            };
            let response = if stored {
                Response::Stored
            } else {
                Response::NotStored
            };
            (response, *noreply)
        }
        Command::Delete { key, noreply } => {
            let response = if cache.delete_for(*tenant, key) {
                Response::Deleted
            } else {
                Response::NotFound
            };
            (response, *noreply)
        }
        Command::App { id } => {
            let response = match std::str::from_utf8(id)
                .ok()
                .and_then(|name| cache.tenant_index(name))
            {
                Some(index) => {
                    *tenant = index;
                    Response::Ok
                }
                None => Response::ClientError(format!(
                    "unknown app {:?} (hosted: {})",
                    String::from_utf8_lossy(id),
                    cache.tenants().names().join(", ")
                )),
            };
            (response, false)
        }
        Command::Stats => (Response::Stats(cache.stats()), false),
        Command::Version => (
            Response::Version("cliffhanger-cache 0.1.0".to_string()),
            false,
        ),
        Command::FlushAll => {
            // Tenant-scoped: one application flushing its namespace must
            // never wipe another application's working set. On a
            // single-tenant server this clears everything, as before.
            cache.flush_tenant(*tenant);
            (Response::Ok, false)
        }
        Command::Quit => (Response::Ok, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendMode;
    use crate::client::CacheClient;

    fn start_test_server(mode: BackendMode) -> CacheServer {
        CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            backend: BackendConfig {
                total_bytes: 8 << 20,
                mode,
                ..BackendConfig::default()
            },
        })
        .expect("server must start")
    }

    #[test]
    fn end_to_end_set_get_delete() {
        let server = start_test_server(BackendMode::Cliffhanger);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        assert!(client.set(b"greeting", 5, b"hello world").unwrap());
        let got = client.get(b"greeting").unwrap().expect("hit");
        assert_eq!(got.0, 5);
        assert_eq!(got.1, b"hello world");
        assert!(client.delete(b"greeting").unwrap());
        assert!(client.get(b"greeting").unwrap().is_none());
        assert!(!client.delete(b"greeting").unwrap());
    }

    #[test]
    fn stats_and_version_and_flush() {
        let server = start_test_server(BackendMode::Default);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        client.set(b"a", 0, b"1").unwrap();
        client.get(b"a").unwrap();
        let version = client.version().unwrap();
        assert!(version.contains("cliffhanger"));
        let stats = client.stats().unwrap();
        let map: std::collections::HashMap<_, _> = stats.into_iter().collect();
        assert_eq!(map["cmd_set"], "1");
        assert_eq!(map["get_hits"], "1");
        assert!(map.contains_key("shard_count"));
        client.flush_all().unwrap();
        assert!(client.get(b"a").unwrap().is_none());
    }

    #[test]
    fn multiple_clients_share_the_cache() {
        let server = start_test_server(BackendMode::HillClimbing);
        let mut writer = CacheClient::connect(server.local_addr()).unwrap();
        let mut reader = CacheClient::connect(server.local_addr()).unwrap();
        writer.set(b"shared", 1, b"data").unwrap();
        let got = reader
            .get(b"shared")
            .unwrap()
            .expect("visible across connections");
        assert_eq!(got.1, b"data");
    }

    #[test]
    fn concurrent_load_is_consistent() {
        let server = start_test_server(BackendMode::Cliffhanger);
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = CacheClient::connect(addr).unwrap();
                    for i in 0..200 {
                        let key = format!("t{t}-k{i}");
                        let value = format!("value-{t}-{i}");
                        assert!(client.set(key.as_bytes(), 0, value.as_bytes()).unwrap());
                        let got = client
                            .get(key.as_bytes())
                            .unwrap()
                            .expect("own write visible");
                        assert_eq!(got.1, value.as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats: std::collections::HashMap<_, _> = server.cache().stats().into_iter().collect();
        let sets: u64 = stats["cmd_set"].parse().unwrap();
        assert_eq!(sets, 800);
    }

    #[test]
    fn binary_values_survive_the_wire() {
        let server = start_test_server(BackendMode::Cliffhanger);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        let payload: Vec<u8> = (0..=255u8).cycle().take(4_096).collect();
        assert!(client.set(b"binary", 0, &payload).unwrap());
        let got = client.get(b"binary").unwrap().expect("hit");
        assert_eq!(got.1, payload);
    }

    fn start_tenant_server() -> CacheServer {
        CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            // One worker per concurrent test client: connections hold their
            // worker for their whole lifetime, so fewer workers than clients
            // deadlocks the test, not just slows it.
            workers: 4,
            backend: BackendConfig {
                total_bytes: 12 << 20,
                mode: BackendMode::Cliffhanger,
                shards: 2,
                tenants: vec![
                    crate::backend::TenantSpec::new("alpha", 1),
                    crate::backend::TenantSpec::new("beta", 1),
                ],
                ..BackendConfig::default()
            },
        })
        .expect("server must start")
    }

    #[test]
    fn app_selector_scopes_sessions_end_to_end() {
        let server = start_tenant_server();
        let mut alpha = CacheClient::connect(server.local_addr()).unwrap();
        let mut beta = CacheClient::connect(server.local_addr()).unwrap();
        let mut plain = CacheClient::connect(server.local_addr()).unwrap();
        assert!(alpha.app("alpha").unwrap());
        assert!(beta.app("beta").unwrap());
        // The same wire key is independent per namespace.
        assert!(alpha.set(b"k", 1, b"from-alpha").unwrap());
        assert!(beta.set(b"k", 2, b"from-beta").unwrap());
        assert!(plain.set(b"k", 3, b"from-default").unwrap());
        assert_eq!(alpha.get(b"k").unwrap().unwrap().1, b"from-alpha");
        assert_eq!(beta.get(b"k").unwrap().unwrap().1, b"from-beta");
        assert_eq!(plain.get(b"k").unwrap().unwrap().1, b"from-default");
        // Stats carry per-tenant sections.
        let stats: std::collections::HashMap<_, _> = plain.stats().unwrap().into_iter().collect();
        assert_eq!(stats["tenant_count"], "3");
        assert_eq!(stats["tenant:alpha:cmd_set"], "1");
        assert_eq!(stats["tenant:beta:cmd_set"], "1");
        assert_eq!(stats["tenant:default:cmd_set"], "1");
    }

    #[test]
    fn unknown_app_is_a_client_error_and_keeps_the_session_tenant() {
        let server = start_tenant_server();
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        assert!(client.app("alpha").unwrap());
        assert!(client.set(b"k", 0, b"v").unwrap());
        assert!(!client.app("nope").unwrap(), "unknown app must be refused");
        // Still scoped to alpha after the failed switch.
        assert_eq!(client.get(b"k").unwrap().unwrap().1, b"v");
    }

    #[test]
    fn flush_all_is_tenant_scoped() {
        let server = start_tenant_server();
        let mut alpha = CacheClient::connect(server.local_addr()).unwrap();
        let mut plain = CacheClient::connect(server.local_addr()).unwrap();
        assert!(alpha.app("alpha").unwrap());
        assert!(alpha.set(b"a", 0, b"1").unwrap());
        assert!(plain.set(b"d", 0, b"1").unwrap());
        alpha.flush_all().unwrap();
        assert!(alpha.get(b"a").unwrap().is_none(), "alpha flushed itself");
        assert_eq!(
            plain.get(b"d").unwrap().unwrap().1,
            b"1",
            "alpha's flush must not touch the default namespace"
        );
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = start_test_server(BackendMode::Default);
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn zero_workers_is_rejected_with_a_clear_error() {
        let err = match CacheServer::start(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        }) {
            Ok(_) => panic!("workers = 0 must be rejected"),
            Err(err) => err,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("workers"));
    }

    #[test]
    fn shutdown_unblocks_idle_connections() {
        let mut server = start_test_server(BackendMode::Default);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        assert!(client.set(b"live", 0, b"1").unwrap());
        // The client is idle (server blocked in read); shutdown must not
        // hang waiting for it to disconnect.
        server.shutdown();
        // The connection is now closed from the server side.
        assert!(client.get(b"live").is_err());
    }
}
