//! Request and trace types.
//!
//! A [`Trace`] is an ordered sequence of [`Request`]s across applications.
//! Traces are deterministic functions of their generator configuration and a
//! seed, can be serialised to JSON-lines for inspection or reuse, and carry
//! the item size on every request (like the Memcachier trace analysis, which
//! needs the size to map requests onto slab classes).

use cache_core::{AppId, Key};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::io::{BufRead, Write};

/// The operation a request performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read a key (a miss is typically followed by a demand-fill SET by the
    /// simulator, mirroring a look-aside cache).
    Get,
    /// Write a key (an application-initiated update).
    Set,
    /// Remove a key.
    Delete,
}

/// One cache request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The application issuing the request.
    pub app: AppId,
    /// The key being accessed.
    pub key: Key,
    /// The item's value size in bytes.
    pub size: u32,
    /// The operation.
    pub op: Op,
    /// Seconds since the start of the trace.
    pub time: u64,
}

impl Request {
    /// A GET request.
    pub fn get(app: AppId, key: Key, size: u32, time: u64) -> Self {
        Request {
            app,
            key,
            size,
            op: Op::Get,
            time,
        }
    }

    /// A SET request.
    pub fn set(app: AppId, key: Key, size: u32, time: u64) -> Self {
        Request {
            app,
            key,
            size,
            op: Op::Set,
            time,
        }
    }
}

/// An ordered sequence of requests.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The requests, ordered by time.
    pub requests: Vec<Request>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from requests (kept in the given order).
    pub fn from_requests(requests: Vec<Request>) -> Self {
        Trace { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Appends a request.
    pub fn push(&mut self, request: Request) {
        self.requests.push(request);
    }

    /// Iterates over the requests in order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.requests.iter()
    }

    /// The requests of a single application, preserving order.
    pub fn filter_app(&self, app: AppId) -> Trace {
        Trace {
            requests: self
                .requests
                .iter()
                .copied()
                .filter(|r| r.app == app)
                .collect(),
        }
    }

    /// The applications present in the trace, ascending.
    pub fn apps(&self) -> Vec<AppId> {
        let mut apps: Vec<AppId> = self
            .requests
            .iter()
            .map(|r| r.app)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        apps.sort();
        apps
    }

    /// The span of the trace in seconds (last minus first timestamp).
    pub fn duration(&self) -> u64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) => last.time.saturating_sub(first.time),
            _ => 0,
        }
    }

    /// Summary statistics.
    pub fn summary(&self) -> TraceSummary {
        let mut per_app: BTreeMap<AppId, u64> = BTreeMap::new();
        let mut gets = 0u64;
        let mut sets = 0u64;
        let mut deletes = 0u64;
        let mut distinct: HashSet<(AppId, Key)> = HashSet::new();
        let mut total_size: u128 = 0;
        for r in &self.requests {
            *per_app.entry(r.app).or_default() += 1;
            match r.op {
                Op::Get => gets += 1,
                Op::Set => sets += 1,
                Op::Delete => deletes += 1,
            }
            distinct.insert((r.app, r.key));
            total_size += r.size as u128;
        }
        TraceSummary {
            requests: self.requests.len() as u64,
            gets,
            sets,
            deletes,
            distinct_keys: distinct.len() as u64,
            mean_size: if self.requests.is_empty() {
                0.0
            } else {
                total_size as f64 / self.requests.len() as f64
            },
            duration: self.duration(),
            requests_per_app: per_app,
        }
    }

    /// Serialises the trace as JSON lines.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        for r in &self.requests {
            let line = serde_json::to_string(r)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(writer, "{line}")?;
        }
        Ok(())
    }

    /// Reads a JSON-lines trace.
    pub fn read_jsonl<R: BufRead>(reader: R) -> std::io::Result<Trace> {
        let mut requests = Vec::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let request: Request = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            requests.push(request);
        }
        Ok(Trace { requests })
    }
}

/// Aggregate statistics of a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total requests.
    pub requests: u64,
    /// GET requests.
    pub gets: u64,
    /// SET requests.
    pub sets: u64,
    /// DELETE requests.
    pub deletes: u64,
    /// Number of distinct (app, key) pairs.
    pub distinct_keys: u64,
    /// Mean item size in bytes.
    pub mean_size: f64,
    /// Trace duration in seconds.
    pub duration: u64,
    /// Requests per application.
    pub requests_per_app: BTreeMap<AppId, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(Request::get(AppId::new(1), Key::new(10), 100, 0));
        t.push(Request::set(AppId::new(1), Key::new(10), 100, 1));
        t.push(Request::get(AppId::new(2), Key::new(20), 5_000, 2));
        t.push(Request {
            app: AppId::new(2),
            key: Key::new(21),
            size: 64,
            op: Op::Delete,
            time: 10,
        });
        t
    }

    #[test]
    fn summary_counts_everything() {
        let s = sample_trace().summary();
        assert_eq!(s.requests, 4);
        assert_eq!(s.gets, 2);
        assert_eq!(s.sets, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.distinct_keys, 3);
        assert_eq!(s.duration, 10);
        assert_eq!(s.requests_per_app[&AppId::new(1)], 2);
        assert_eq!(s.requests_per_app[&AppId::new(2)], 2);
        assert!((s.mean_size - (100.0 + 100.0 + 5_000.0 + 64.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn filter_app_keeps_order() {
        let t = sample_trace();
        let app2 = t.filter_app(AppId::new(2));
        assert_eq!(app2.len(), 2);
        assert!(app2.iter().all(|r| r.app == AppId::new(2)));
        assert_eq!(t.apps(), vec![AppId::new(1), AppId::new(2)]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let parsed = Trace::read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_rejects_garbage() {
        let input = b"\n\n".to_vec();
        assert!(Trace::read_jsonl(std::io::Cursor::new(input))
            .unwrap()
            .is_empty());
        let garbage = b"not json\n".to_vec();
        assert!(Trace::read_jsonl(std::io::Cursor::new(garbage)).is_err());
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0);
        let s = t.summary();
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_size, 0.0);
    }
}
