//! Online sampled miss-ratio-curve estimation for a *live* cache server.
//!
//! The simulator-side estimators in this crate ([`crate::stack_distance`],
//! [`crate::mimir`]) assume they see every request. A cache server cannot
//! afford that: tracking every key costs memory proportional to the working
//! set and CPU on the hottest path it has. [`OnlineMrc`] combines two ideas
//! so the estimate stays cheap and bounded:
//!
//! * **Spatial hash sampling** (SHARDS, Waldspurger et al., FAST 2015): a
//!   key is profiled iff a hash of its id falls under a threshold, giving a
//!   fixed sampling rate `R = 2^-shift` over the *key population*. Stack
//!   distances measured inside the sampled subset scale to the full
//!   population by `1/R` — a request stream over `1/R` fewer distinct keys
//!   re-references a sampled key after `1/R` fewer distinct intervening
//!   keys, in expectation. The non-sampled path is one multiply-shift hash
//!   and one compare: near-zero cost for the ~`1 - R` majority of GETs.
//! * **Mimir buckets** ([`MimirEstimator`]) under the sample: distances among
//!   sampled keys are estimated in O(tracked/B) amortized with a hard cap on
//!   tracked keys, so memory stays bounded no matter how long the server
//!   runs or how large the tenant's working set grows.
//!
//! The estimator is deliberately shared-nothing: each event loop owns one
//! per tenant, records only the GETs it serves, and exports a serializable
//! [`MrcSnapshot`] whose [`MrcSnapshot::merge`] is exact concatenation of
//! the underlying scaled-distance samples — valid across loops because the
//! loops own *disjoint* key populations (shards), which is just more spatial
//! sampling. A loop owning `owned` of `total` shards passes
//! `owned as f64 / total as f64` as its population share and the recorded
//! distances absorb the extra `total/owned` scale.

use crate::curve::HitRateCurve;
use crate::mimir::MimirEstimator;
use crate::stack_distance::StackDistanceHistogram;
use cache_core::key::mix64;
use cache_core::Key;
use serde::{Deserialize, Serialize};

/// Salt decorrelating the sampling hash from the shard-routing hash (both
/// are finalized from the same key id).
const SAMPLE_SALT: u64 = 0x9e6c_63d0_876a_3f00;

/// Mimir bucket count under the sample. More buckets shrink the
/// within-bucket distance quantisation error (the dominant error term at
/// R = 1, where sampling itself is exact) at the cost of a longer
/// amortised aging scan; 128 keeps full-sampling error under ~2pp on
/// Zipf-skewed traces.
const MIMIR_BUCKETS: usize = 128;

/// Hard cap on sampled keys tracked per estimator. At the default R = 1/64
/// this bounds each per-loop per-tenant estimator to roughly
/// `64 * 32768 = 2M` distinct keys of coverage before the oldest sampled
/// keys are pruned, at a few hundred KB worst case.
const MAX_TRACKED: usize = 32_768;

/// A SHARDS-sampled, Mimir-bucketed, online miss-ratio-curve estimator.
#[derive(Debug)]
pub struct OnlineMrc {
    shift: u32,
    /// Sample iff `mix64(key ^ salt) <= threshold` (`u64::MAX >> shift`).
    threshold: u64,
    /// Multiplier taking a measured in-sample distance to a full-population
    /// distance: `2^shift / population_share`.
    scale: f64,
    mimir: MimirEstimator,
    offered: u64,
    sampled: u64,
    histogram: StackDistanceHistogram,
}

impl OnlineMrc {
    /// An estimator sampling at rate `R = 2^-shift` over the whole key
    /// population (`shift = 0` profiles every key — the exact degenerate
    /// case, for tests and offline replays).
    pub fn new(shift: u32) -> OnlineMrc {
        OnlineMrc::with_population_share(shift, 1.0)
    }

    /// An estimator that additionally only ever *sees* `share` of the key
    /// population (`0 < share <= 1`) — an event loop owning `owned` of
    /// `total` shards passes `owned / total`, and recorded distances are
    /// scaled by the combined `2^shift / share` factor.
    pub fn with_population_share(shift: u32, share: f64) -> OnlineMrc {
        assert!(shift < 63, "sampling shift must leave a nonzero rate");
        assert!(
            share > 0.0 && share <= 1.0,
            "population share must be in (0, 1], got {share}"
        );
        OnlineMrc {
            shift,
            threshold: u64::MAX >> shift,
            scale: (1u64 << shift) as f64 / share,
            mimir: MimirEstimator::new(MIMIR_BUCKETS, MAX_TRACKED),
            offered: 0,
            sampled: 0,
            histogram: StackDistanceHistogram::new(),
        }
    }

    /// Records one GET. For the `1 - R` majority of keys this is one hash,
    /// one counter increment and one branch; sampled keys pay the Mimir
    /// bucket update.
    #[inline]
    pub fn record(&mut self, key: Key) {
        self.offered += 1;
        if mix64(key.raw() ^ SAMPLE_SALT) > self.threshold {
            return;
        }
        self.sampled += 1;
        // Mimir keeps its own (unscaled, in-sample) histogram; the curve
        // must come from distances rescaled to the full population, so the
        // estimator accumulates its own.
        match self.mimir.record(key) {
            Some(d) => self
                .histogram
                .record(((d as f64 * self.scale).round() as usize).max(1)),
            None => self.histogram.record_cold(),
        }
    }

    /// The configured sampling shift (`R = 2^-shift`).
    pub fn sample_shift(&self) -> u32 {
        self.shift
    }

    /// The configured sampling rate `R` as a fraction.
    pub fn sample_rate(&self) -> f64 {
        1.0 / (1u64 << self.shift) as f64
    }

    /// GETs offered to the estimator (sampled or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// GETs that passed the sampling gate.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Distinct sampled keys currently tracked by the bucket estimator.
    pub fn tracked_keys(&self) -> usize {
        self.mimir.tracked_keys()
    }

    /// The accumulated population-scaled stack-distance histogram.
    pub fn histogram(&self) -> &StackDistanceHistogram {
        &self.histogram
    }

    /// The estimated full-population hit-rate curve (SHARDS_adj-corrected,
    /// see [`MrcSnapshot::to_curve`]).
    pub fn to_curve(&self) -> HitRateCurve {
        self.snapshot().to_curve()
    }

    /// Exports the estimator's accumulated samples for the snapshot/merge
    /// path. Cheap relative to a stats round-trip; the estimator keeps
    /// accumulating afterwards.
    pub fn snapshot(&self) -> MrcSnapshot {
        MrcSnapshot {
            shift: self.shift,
            offered: self.offered,
            sampled: self.sampled,
            tracked_keys: self.mimir.tracked_keys() as u64,
            histogram: self.histogram.clone(),
        }
    }
}

/// A serializable export of one [`OnlineMrc`]'s accumulated samples.
///
/// Merging snapshots is *exactly* concatenation of their scaled-distance
/// sample multisets (see [`MrcSnapshot::merge`]), so per-loop estimators
/// over disjoint key populations combine into one unbiased population
/// estimate with no coordination while running.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MrcSnapshot {
    /// The sampling shift the samples were taken at (`R = 2^-shift`).
    pub shift: u32,
    /// GETs offered to the estimator (sampled or not).
    pub offered: u64,
    /// GETs that passed the sampling gate.
    pub sampled: u64,
    /// Distinct sampled keys tracked at snapshot time (summed on merge).
    pub tracked_keys: u64,
    /// Population-scaled stack-distance histogram of the sampled GETs.
    pub histogram: StackDistanceHistogram,
}

impl MrcSnapshot {
    /// Merges another snapshot in: histogram counts add per distance,
    /// offered/sampled/tracked counters add. Exact — no re-estimation
    /// happens.
    pub fn merge(&mut self, other: &MrcSnapshot) {
        self.shift = self.shift.max(other.shift);
        self.offered += other.offered;
        self.sampled += other.sampled;
        self.tracked_keys += other.tracked_keys;
        self.histogram.merge(&other.histogram);
    }

    /// The estimated full-population hit-rate curve of the merged samples,
    /// with the SHARDS_adj correction applied: spatial sampling at rate `R`
    /// expects `offered × R` sampled references, and any shortfall is mass
    /// from unsampled *hot* keys, so it is restored into the smallest
    /// distance bucket before building the curve (an excess is drained the
    /// same way). At `shift = 0` the correction is identically zero.
    pub fn to_curve(&self) -> HitRateCurve {
        let expected = (self.offered >> self.shift) as i64;
        let diff = expected - self.histogram.total() as i64;
        if diff == 0 {
            return self.histogram.to_curve();
        }
        let mut adjusted = self.histogram.clone();
        adjusted.adjust_first_bucket(diff);
        adjusted.to_curve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack_distance::StackDistanceTracker;
    use proptest::prelude::*;
    use rand::distributions::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(i: u64) -> Key {
        Key::new(mix64(i.wrapping_add(1)))
    }

    fn zipf_trace(distinct: u64, requests: usize, seed: u64) -> Vec<Key> {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = rand::distributions::WeightedIndex::new(
            (1..=distinct).map(|r| 1.0 / r as f64).collect::<Vec<_>>(),
        )
        .unwrap();
        (0..requests)
            .map(|_| key(zipf.sample(&mut rng) as u64))
            .collect()
    }

    /// R = 1 (shift 0) degenerates to plain Mimir estimation: the curve
    /// must track the exact Mattson curve within the Mimir error bound.
    #[test]
    fn exact_sampling_tracks_exact_curve_on_zipf() {
        let trace = zipf_trace(500, 30_000, 42);
        let mut exact = StackDistanceTracker::new();
        let mut online = OnlineMrc::new(0);
        for &k in &trace {
            exact.record(k);
            online.record(k);
        }
        assert_eq!(online.sampled(), trace.len() as u64);
        let exact_curve = exact.to_curve();
        let online_curve = online.to_curve();
        for probe in [25u64, 50, 100, 250, 500] {
            let e = exact_curve.hit_rate_at(probe);
            let o = online_curve.hit_rate_at(probe);
            assert!(
                (e - o).abs() < 0.15,
                "at {probe} items exact={e:.3} online={o:.3}"
            );
        }
    }

    /// R = 1/64 sampling on a bigger Zipf trace: the scaled curve must land
    /// within a bounded error of the exact curve at every probed scale.
    #[test]
    fn sampled_curve_is_within_bounded_error_of_exact() {
        let trace = zipf_trace(10_000, 120_000, 7);
        let mut exact = StackDistanceTracker::new();
        let mut online = OnlineMrc::new(6);
        for &k in &trace {
            exact.record(k);
            online.record(k);
        }
        let rate = online.sampled() as f64 / trace.len() as f64;
        assert!(
            (rate - 1.0 / 64.0).abs() < 0.01,
            "sampled fraction {rate:.4} should be near 1/64"
        );
        assert!(online.tracked_keys() < 1_000, "memory must stay bounded");
        let exact_curve = exact.to_curve();
        let online_curve = online.to_curve();
        // SHARDS resolves cache sizes above 1/R distinct keys (an in-sample
        // distance of 1 already scales to 64 items), so the probed scales
        // start at ~8x the sampling granularity.
        for probe in [500u64, 1_000, 2_500, 5_000, 10_000] {
            let e = exact_curve.hit_rate_at(probe);
            let o = online_curve.hit_rate_at(probe);
            assert!(
                (e - o).abs() < 0.15,
                "at {probe} items exact={e:.3} sampled={o:.3}"
            );
        }
    }

    /// A loop that owns half the shards sees half the population; with the
    /// share folded into the scale, its curve still estimates the *full*
    /// population within tolerance.
    #[test]
    fn population_share_rescales_partition_views() {
        let trace = zipf_trace(2_000, 60_000, 11);
        let mut exact = StackDistanceTracker::new();
        let mut half = OnlineMrc::with_population_share(0, 0.5);
        for &k in &trace {
            exact.record(k);
            // The "loop" owns the even half of the key population.
            if mix64(k.raw()) % 2 == 0 {
                half.record(k);
            }
        }
        let exact_curve = exact.to_curve();
        let half_curve = half.to_curve();
        for probe in [100u64, 400, 1_000, 2_000] {
            let e = exact_curve.hit_rate_at(probe);
            let h = half_curve.hit_rate_at(probe);
            assert!(
                (e - h).abs() < 0.15,
                "at {probe} items exact={e:.3} half-view={h:.3}"
            );
        }
    }

    /// Two per-loop estimators over disjoint key halves, merged, agree with
    /// the exact full-population curve — the server's snapshot/merge path
    /// in miniature.
    #[test]
    fn merged_disjoint_views_estimate_the_full_population() {
        let trace = zipf_trace(2_000, 60_000, 13);
        let mut exact = StackDistanceTracker::new();
        let mut loops = [
            OnlineMrc::with_population_share(0, 0.5),
            OnlineMrc::with_population_share(0, 0.5),
        ];
        for &k in &trace {
            exact.record(k);
            loops[(mix64(k.raw()) % 2) as usize].record(k);
        }
        let mut merged = loops[0].snapshot();
        merged.merge(&loops[1].snapshot());
        assert_eq!(
            merged.sampled,
            trace.len() as u64,
            "disjoint halves must cover every request"
        );
        let exact_curve = exact.to_curve();
        let merged_curve = merged.to_curve();
        for probe in [100u64, 400, 1_000, 2_000] {
            let e = exact_curve.hit_rate_at(probe);
            let m = merged_curve.hit_rate_at(probe);
            assert!(
                (e - m).abs() < 0.15,
                "at {probe} items exact={e:.3} merged={m:.3}"
            );
        }
    }

    proptest! {
        /// Mirrors the histogram merge==concatenation property: merging two
        /// snapshots yields exactly the histogram/counters of the combined
        /// sample multiset, at every distance, in either merge order.
        #[test]
        fn merge_equals_concatenation(
            left in proptest::collection::vec(0u64..500, 0..400),
            right in proptest::collection::vec(0u64..500, 0..400),
        ) {
            let mut a = OnlineMrc::new(0);
            for &i in &left { a.record(key(i)); }
            let mut b = OnlineMrc::new(0);
            for &i in &right { b.record(key(i)); }

            let mut ab = a.snapshot();
            ab.merge(&b.snapshot());
            let mut ba = b.snapshot();
            ba.merge(&a.snapshot());

            prop_assert_eq!(ab.sampled, (left.len() + right.len()) as u64);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(
                ab.histogram.total(),
                a.snapshot().histogram.total() + b.snapshot().histogram.total()
            );
            prop_assert_eq!(
                ab.histogram.cold(),
                a.histogram().cold() + b.histogram().cold()
            );
            let max = ab.histogram.max_distance();
            for d in 1..=max {
                prop_assert_eq!(
                    ab.histogram.count_at(d),
                    a.histogram().count_at(d) + b.histogram().count_at(d),
                    "distance {}", d
                );
            }
        }
    }

    /// The non-sampled path must not touch the estimator's state: with a
    /// high shift and keys crafted to miss the gate, nothing accumulates.
    #[test]
    fn unsampled_keys_leave_no_trace() {
        let mut m = OnlineMrc::new(20);
        let mut recorded = 0u64;
        for i in 0..10_000u64 {
            let k = key(i);
            if mix64(k.raw() ^ SAMPLE_SALT) <= m.threshold {
                recorded += 1;
            }
            m.record(k);
        }
        assert_eq!(m.sampled(), recorded);
        assert!(
            m.sampled() < 100,
            "shift 20 should gate out almost everything, sampled {}",
            m.sampled()
        );
        assert_eq!(m.histogram().total(), recorded);
    }
}
