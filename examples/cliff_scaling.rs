//! Cliff scaling in action: a web application that sequentially scans a
//! database slightly larger than its cache — the canonical performance cliff
//! of paper §3.5. Plain LRU hits almost nothing; Cliffhanger's queue
//! partitioning recovers a large fraction of the hits without any profiling.
//!
//! Run with: `cargo run --release --example cliff_scaling`

use cliffhanger_repro::prelude::*;

fn run(label: &str, system: &CacheSystem, trace: &Trace, options: &ReplayOptions) {
    let result = replay_app(trace, system, options);
    println!(
        "{label:<28} hit rate {:>5.1}%  ({} hits / {} GETs)",
        result.hit_rate() * 100.0,
        result.stats.hits,
        result.stats.gets
    );
}

fn main() {
    // The scanned "database": 22.5k items of ~400 bytes, cyclically
    // re-read. The 10 MB reservation holds a few percent less than the
    // working set — a genuine cliff (plain LRU drops to its ~13% floor)
    // that still sits within the cliff shadows' sensory range: a scanned
    // key is only observable if it is re-referenced within
    // `cliff_shadow_items` evictions of leaving the queue, which bounds
    // how deep a detectable cliff can be.
    let profile = AppProfile::simple(
        11,
        "sequential-scanner",
        1.0,
        10 << 20,
        Phase::zipf(2_000, 0.8, SizeDistribution::Fixed(400)).with_scan(0.85, 22_500),
    )
    .with_get_fraction(1.0);
    let trace = Trace::from_requests(profile.generate(900_000, 3_600, 42));
    let options = ReplayOptions::new(10 << 20);

    println!(
        "scan of ~22.5k items x ~400 B against a 10 MB cache (the working \
         set just misses fitting)\n"
    );
    run(
        "default (FCFS + LRU)",
        &CacheSystem::default_lru(),
        &trace,
        &options,
    );
    run(
        "hill climbing only",
        &CacheSystem::Cliffhanger {
            mode: CliffhangerMode::HillClimbingOnly,
            policy: PolicyKind::Lru,
        },
        &trace,
        &options,
    );
    run(
        "cliff scaling only",
        &CacheSystem::Cliffhanger {
            mode: CliffhangerMode::CliffScalingOnly,
            policy: PolicyKind::Lru,
        },
        &trace,
        &options,
    );
    run(
        "Cliffhanger (combined)",
        &CacheSystem::cliffhanger(),
        &trace,
        &options,
    );

    // Show the split the cliff-scaling algorithm converged to.
    let result = replay_app(
        &trace,
        &CacheSystem::cliffhanger(),
        &options.clone().with_timeline(10),
    );
    if let Some(last) = result.timeline.last() {
        println!(
            "\nfinal per-class targets (bytes): {:?}",
            last.class_targets
        );
    }
}
