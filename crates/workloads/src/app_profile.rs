//! Per-application workload profiles.
//!
//! An [`AppProfile`] describes how one application behaves: how many keys it
//! touches, how skewed its popularity is, how large its items are, how much
//! of its traffic is sequential scanning (the cliff-producing pattern), how
//! much of it writes, and how the behaviour changes over the trace
//! ([`Phase`]s). Profiles generate deterministic request streams given a
//! seed, which the Memcachier-like trace builder interleaves across
//! applications.

use crate::scan::ScanGenerator;
use crate::sizes::SizeDistribution;
use crate::trace::{Op, Request};
use crate::zipf::{KeyPopularity, PopularitySampler};
use cache_core::{AppId, Key};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One phase of an application's behaviour.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Fraction of the application's requests that fall in this phase
    /// (normalised across phases).
    pub fraction: f64,
    /// Key popularity within the phase.
    pub popularity: KeyPopularity,
    /// Item sizes within the phase.
    pub sizes: SizeDistribution,
    /// Fraction of the phase's requests produced by a cyclic scan.
    pub scan_fraction: f64,
    /// Number of distinct keys the scan covers (ignored when
    /// `scan_fraction == 0`).
    pub scan_length: u64,
    /// Offset added to every popularity-drawn key id, so phases can shift
    /// the working set.
    pub key_offset: u64,
}

impl Phase {
    /// A single-phase helper: Zipf popularity, no scan.
    pub fn zipf(num_keys: u64, exponent: f64, sizes: SizeDistribution) -> Self {
        Phase {
            fraction: 1.0,
            popularity: KeyPopularity::Zipf { num_keys, exponent },
            sizes,
            scan_fraction: 0.0,
            scan_length: 0,
            key_offset: 0,
        }
    }

    /// Adds a scan component to the phase.
    pub fn with_scan(mut self, scan_fraction: f64, scan_length: u64) -> Self {
        self.scan_fraction = scan_fraction.clamp(0.0, 1.0);
        self.scan_length = scan_length.max(1);
        self
    }

    /// Shifts the phase's working set by `offset` keys.
    pub fn with_key_offset(mut self, offset: u64) -> Self {
        self.key_offset = offset;
        self
    }

    /// Sets the phase's share of the application's requests.
    pub fn with_fraction(mut self, fraction: f64) -> Self {
        self.fraction = fraction.max(0.0);
        self
    }
}

/// A complete per-application workload description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// The application's identifier.
    pub app: AppId,
    /// Human-readable name used in reports.
    pub name: String,
    /// Relative share of the server's requests (normalised across apps).
    pub request_share: f64,
    /// Fraction of requests that are GETs; the remainder are application
    /// SET/update requests. (Demand fills after GET misses are issued by the
    /// cache simulator, not the trace.)
    pub get_fraction: f64,
    /// The application's static memory reservation on the server, in bytes
    /// (Memcachier's model, paper §3).
    pub reserved_bytes: u64,
    /// Whether the paper marks this application as having performance cliffs
    /// (the asterisks in Figure 2).
    pub has_cliff: bool,
    /// Behaviour phases, in order.
    pub phases: Vec<Phase>,
}

impl AppProfile {
    /// A single-phase application.
    pub fn simple(
        app: u32,
        name: &str,
        request_share: f64,
        reserved_bytes: u64,
        phase: Phase,
    ) -> Self {
        AppProfile {
            app: AppId::new(app),
            name: name.to_string(),
            request_share,
            get_fraction: 0.97,
            reserved_bytes,
            has_cliff: false,
            phases: vec![phase],
        }
    }

    /// Marks the application as cliff-prone (for reporting).
    pub fn with_cliff(mut self) -> Self {
        self.has_cliff = true;
        self
    }

    /// Overrides the GET fraction.
    pub fn with_get_fraction(mut self, get_fraction: f64) -> Self {
        self.get_fraction = get_fraction.clamp(0.0, 1.0);
        self
    }

    /// Generates `requests` requests for this application, with timestamps
    /// spread evenly over `duration_secs`, deterministically from `seed`.
    pub fn generate(&self, requests: u64, duration_secs: u64, seed: u64) -> Vec<Request> {
        let mut out = Vec::with_capacity(requests as usize);
        let mut generator = AppRequestGenerator::new(self, seed);
        for i in 0..requests {
            let time = if requests <= 1 {
                0
            } else {
                i * duration_secs / (requests - 1)
            };
            out.push(generator.next_request(time));
        }
        out
    }

    /// Creates a streaming generator (used by the multi-application trace
    /// builder so applications can be interleaved without materialising each
    /// one separately).
    pub fn generator(&self, seed: u64) -> AppRequestGenerator {
        AppRequestGenerator::new(self, seed)
    }

    /// The key-id namespace base for this application (keys of different
    /// applications never collide).
    fn key_base(&self) -> u64 {
        (self.app.0 as u64) << 40
    }
}

/// Streaming request generator for one application.
#[derive(Debug)]
pub struct AppRequestGenerator {
    app: AppId,
    key_base: u64,
    get_fraction: f64,
    /// Per-phase state: (cumulative fraction, sampler, sizes, scan, offset).
    phases: Vec<PhaseState>,
    rng: StdRng,
    size_salt: u64,
    /// Requests generated so far (used to progress through phases).
    issued: u64,
    /// Total requests expected (phase boundaries are proportional to this;
    /// if unknown, phases are cycled by weight instead).
    expected_total: Option<u64>,
}

#[derive(Debug)]
struct PhaseState {
    cumulative_fraction: f64,
    sampler: PopularitySampler,
    sizes: SizeDistribution,
    scan_fraction: f64,
    scan: Option<ScanGenerator>,
    key_offset: u64,
}

impl AppRequestGenerator {
    fn new(profile: &AppProfile, seed: u64) -> Self {
        assert!(
            !profile.phases.is_empty(),
            "a profile needs at least one phase"
        );
        let total_fraction: f64 = profile.phases.iter().map(|p| p.fraction.max(0.0)).sum();
        let total_fraction = if total_fraction <= 0.0 {
            1.0
        } else {
            total_fraction
        };
        let mut cumulative = 0.0;
        let phases = profile
            .phases
            .iter()
            .map(|p| {
                cumulative += p.fraction.max(0.0) / total_fraction;
                PhaseState {
                    cumulative_fraction: cumulative,
                    sampler: p.popularity.sampler(),
                    sizes: p.sizes.clone(),
                    scan_fraction: p.scan_fraction,
                    scan: (p.scan_fraction > 0.0)
                        .then(|| ScanGenerator::new(1 << 32, p.scan_length.max(1))),
                    key_offset: p.key_offset,
                }
            })
            .collect();
        AppRequestGenerator {
            app: profile.app,
            key_base: profile.key_base(),
            get_fraction: profile.get_fraction,
            phases,
            rng: StdRng::seed_from_u64(seed ^ ((profile.app.0 as u64) << 17)),
            size_salt: 0x517e ^ (profile.app.0 as u64),
            issued: 0,
            expected_total: None,
        }
    }

    /// Declares how many requests this generator is expected to produce in
    /// total, which makes phases progress with trace position rather than
    /// randomly.
    pub fn with_expected_total(mut self, total: u64) -> Self {
        self.expected_total = Some(total.max(1));
        self
    }

    /// Generates the next request with the given timestamp.
    pub fn next_request(&mut self, time: u64) -> Request {
        let progress = match self.expected_total {
            Some(total) => (self.issued as f64 / total as f64).min(1.0),
            None => self.rng.gen::<f64>(),
        };
        self.issued += 1;
        let phase_idx = self
            .phases
            .iter()
            .position(|p| progress <= p.cumulative_fraction + 1e-12)
            .unwrap_or(self.phases.len() - 1);
        let is_get = self.rng.gen_bool(self.get_fraction.clamp(0.0, 1.0));
        let phase = &mut self.phases[phase_idx];
        let use_scan = phase.scan.is_some() && self.rng.gen_bool(phase.scan_fraction);
        let key_id = if use_scan {
            let scan = phase.scan.as_mut().expect("checked above");
            self.key_base + scan.next_key()
        } else {
            self.key_base + phase.key_offset + phase.sampler.sample(&mut self.rng)
        };
        let size = phase
            .sizes
            .size_for_key(key_id, self.size_salt)
            .min(u32::MAX as u64) as u32;
        Request {
            app: self.app,
            key: Key::new(key_id),
            size,
            op: if is_get { Op::Get } else { Op::Set },
            time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AppProfile {
        AppProfile::simple(
            3,
            "test-app",
            0.1,
            4 << 20,
            Phase::zipf(10_000, 1.0, SizeDistribution::Fixed(100)),
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile();
        let a = p.generate(1_000, 3_600, 42);
        let b = p.generate(1_000, 3_600, 42);
        assert_eq!(a, b);
        let c = p.generate(1_000, 3_600, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn timestamps_span_the_duration() {
        let p = profile();
        let requests = p.generate(101, 1_000, 1);
        assert_eq!(requests.first().unwrap().time, 0);
        assert_eq!(requests.last().unwrap().time, 1_000);
        assert!(requests.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn get_fraction_is_respected() {
        let p = profile().with_get_fraction(0.8);
        let requests = p.generate(20_000, 100, 9);
        let gets = requests.iter().filter(|r| r.op == Op::Get).count();
        let fraction = gets as f64 / requests.len() as f64;
        assert!((fraction - 0.8).abs() < 0.02, "GET fraction = {fraction}");
    }

    #[test]
    fn sizes_are_stable_per_key() {
        let p = AppProfile::simple(
            1,
            "sized",
            0.1,
            1 << 20,
            Phase::zipf(500, 0.9, SizeDistribution::facebook_etc()),
        );
        let requests = p.generate(20_000, 100, 5);
        let mut seen: std::collections::HashMap<Key, u32> = std::collections::HashMap::new();
        for r in &requests {
            let entry = seen.entry(r.key).or_insert(r.size);
            assert_eq!(*entry, r.size, "key {:?} changed size", r.key);
        }
    }

    #[test]
    fn keys_are_namespaced_per_app() {
        let a = AppProfile::simple(
            1,
            "a",
            0.5,
            1 << 20,
            Phase::zipf(100, 1.0, SizeDistribution::Fixed(10)),
        );
        let b = AppProfile::simple(
            2,
            "b",
            0.5,
            1 << 20,
            Phase::zipf(100, 1.0, SizeDistribution::Fixed(10)),
        );
        let ka: std::collections::HashSet<Key> =
            a.generate(1_000, 10, 1).iter().map(|r| r.key).collect();
        let kb: std::collections::HashSet<Key> =
            b.generate(1_000, 10, 1).iter().map(|r| r.key).collect();
        assert!(ka.is_disjoint(&kb));
    }

    #[test]
    fn scan_component_produces_cyclic_keys() {
        let p = AppProfile::simple(
            7,
            "scanner",
            0.1,
            1 << 20,
            Phase::zipf(1_000, 1.0, SizeDistribution::Fixed(100)).with_scan(1.0, 50),
        )
        .with_cliff()
        .with_get_fraction(1.0);
        assert!(p.has_cliff);
        let requests = p.generate(200, 10, 3);
        // All keys come from the 50-key scan range and repeat cyclically.
        let distinct: std::collections::HashSet<Key> = requests.iter().map(|r| r.key).collect();
        assert_eq!(distinct.len(), 50);
    }

    #[test]
    fn phases_shift_the_working_set_over_the_trace() {
        let p = AppProfile {
            app: AppId::new(5),
            name: "phased".into(),
            request_share: 0.1,
            get_fraction: 1.0,
            reserved_bytes: 1 << 20,
            has_cliff: false,
            phases: vec![
                Phase::zipf(1_000, 1.0, SizeDistribution::Fixed(64)).with_fraction(0.5),
                Phase::zipf(1_000, 1.0, SizeDistribution::Fixed(4_096))
                    .with_fraction(0.5)
                    .with_key_offset(1_000_000),
            ],
        };
        let mut generator = p.generator(11).with_expected_total(10_000);
        let requests: Vec<Request> = (0..10_000).map(|i| generator.next_request(i)).collect();
        let first_half_small = requests[..5_000].iter().filter(|r| r.size == 64).count();
        let second_half_large = requests[5_000..].iter().filter(|r| r.size == 4_096).count();
        assert!(first_half_small > 4_900);
        assert!(second_half_large > 4_900);
    }
}
