//! # workloads
//!
//! The trace substrate of the reproduction. The paper evaluates Cliffhanger
//! on a week-long trace of the top 20 applications of Memcachier (which is
//! not public) and on micro-benchmarks driven by Mutilate replaying the
//! Facebook ETC distributions. This crate builds the closest synthetic
//! equivalents (see DESIGN.md §1 for the substitution argument):
//!
//! * [`zipf`] — key-popularity samplers (Zipf, uniform, hot-set).
//! * [`sizes`] — per-key item-size distributions (fixed, uniform, lognormal,
//!   generalized Pareto, mixtures) with deterministic per-key sizes.
//! * [`scan`] — sequential / cyclic scan generators, the access pattern that
//!   produces LRU performance cliffs (paper §3.5).
//! * [`app_profile`] — a per-application workload model: popularity, sizes,
//!   GET/SET mix, scan components, phase changes over the trace.
//! * [`memcachier`] — the 20-application Memcachier-like mix, with the
//!   asterisked (cliff-prone) applications of Figure 2 modelled by scan
//!   components, plus per-application memory reservations.
//! * [`facebook_etc`] — the Facebook ETC-like micro-benchmark workload and
//!   the all-miss worst case used for the overhead tables (Tables 6–7).
//! * [`trace`] — request/trace types, deterministic generation, JSON-lines
//!   serialisation and summary statistics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod app_profile;
pub mod facebook_etc;
pub mod memcachier;
pub mod scan;
pub mod sizes;
pub mod trace;
pub mod zipf;

pub use app_profile::{AppProfile, Phase};
pub use facebook_etc::{all_miss_workload, etc_workload, EtcConfig};
pub use memcachier::{memcachier_apps, memcachier_trace, trace_for_apps, MemcachierConfig};
pub use scan::ScanGenerator;
pub use sizes::SizeDistribution;
pub use trace::{Op, Request, Trace, TraceSummary};
pub use zipf::{KeyPopularity, ZipfSampler};
