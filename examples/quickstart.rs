//! Quickstart: build a Cliffhanger-managed cache, feed it a skewed workload
//! whose working set does not fit, and watch hill climbing move memory to
//! the slab classes that need it.
//!
//! Run with: `cargo run --release --example quickstart`

use cliffhanger_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // An 8 MB cache managed by Cliffhanger (hill climbing + cliff scaling).
    let config = CliffhangerConfig::with_total_bytes(8 << 20);
    let mut cache: Cliffhanger<()> = Cliffhanger::new(config);

    // Two item populations: a large universe of small items (needs memory)
    // and a small universe of large items (does not).
    let mut rng = StdRng::seed_from_u64(7);
    let mut gets = 0u64;
    let mut hits = 0u64;
    println!("replaying 600k requests against an 8 MB Cliffhanger cache...");
    for i in 0..600_000u64 {
        let (key, size) = if rng.gen_bool(0.85) {
            (Key::new(rng.gen_range(0..60_000)), 120u64)
        } else {
            (Key::new(1_000_000 + rng.gen_range(0..300u64)), 6_000u64)
        };
        gets += 1;
        let hit = cache.get(key, size).map(|(_, e)| e.hit).unwrap_or(false);
        if hit {
            hits += 1;
        } else {
            cache.set(key, size, ());
        }
        if i % 100_000 == 0 && i > 0 {
            println!(
                "  after {:>7} requests: hit rate {:.1}%, {} credit transfers",
                i,
                100.0 * hits as f64 / gets as f64,
                cache.transfers()
            );
        }
    }

    println!(
        "\nfinal hit rate: {:.1}%",
        100.0 * hits as f64 / gets as f64
    );
    println!("per-class allocation after hill climbing:");
    for snapshot in cache.class_snapshots() {
        if snapshot.used_bytes == 0 && snapshot.stats.gets == 0 {
            continue;
        }
        println!(
            "  slab {:>2} (chunk {:>7} B): target {:>8.2} MB, used {:>8.2} MB, \
             hit rate {:>5.1}%, ratio {:.2}",
            snapshot.class,
            snapshot.chunk_size,
            snapshot.target_bytes as f64 / (1 << 20) as f64,
            snapshot.used_bytes as f64 / (1 << 20) as f64,
            snapshot.stats.hit_ratio().percent(),
            snapshot.ratio,
        );
    }
}
