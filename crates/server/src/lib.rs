//! # cache-server
//!
//! A Memcached-text-protocol TCP server backed by the Cliffhanger-managed
//! cache, plus a blocking client. This is the piece the paper's
//! micro-benchmarks exercise (Tables 6 and 7): the protocol and connection
//! handling are the fixed cost, and the question is how much latency and
//! throughput overhead the shadow queues and the two algorithms add on top.
//!
//! The server uses blocking I/O and a small thread pool rather than an async
//! runtime: the workload is memory-bound (the paper makes the same point
//! about Memcachier and Facebook in §5.6), and the provided networking
//! guides recommend plain threads for CPU/memory-bound services.
//!
//! * [`protocol`] — parsing and serialising the Memcached ASCII protocol,
//!   including the multi-tenant `app <name>` session selector.
//! * [`backend`] — the shared, N-way sharded, multi-tenant cache behind the
//!   connections (exact byte-string keys on top of the 64-bit key space;
//!   every shard hosts one engine *per tenant* with its own lock and
//!   counters, per-tenant budgets rebalance across shards, and a
//!   cross-tenant arbiter replaces static reservations).
//! * [`threadpool`] — a fixed-size worker pool over crossbeam channels.
//! * [`server`] — the TCP listener / connection loop.
//! * [`client`] — a blocking client for tests, benches and examples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod backend;
pub mod client;
pub mod protocol;
pub mod server;
pub mod threadpool;

pub use backend::{detect_shards, BackendConfig, BackendMode, SharedCache, TenantSpec};
pub use client::CacheClient;
pub use protocol::{Command, Response};
pub use server::{CacheServer, ServerConfig};
pub use threadpool::ThreadPool;
