//! # telemetry
//!
//! Shared observability primitives for the workspace, used on both sides of
//! the wire:
//!
//! * [`histogram`] — the HDR-style log-linear latency [`Histogram`] and its
//!   JSON-ready [`LatencySummary`]. The load generator records client-side
//!   request latencies into it; the server's event loops record per-loop,
//!   per-command-class *service* times into it. One recorder, one
//!   quantisation model, directly comparable numbers.
//! * [`journal`] — the control-plane flight recorder: a fixed-size ring
//!   [`Journal`] of structured [`JournalEvent`]s (budget transfers with the
//!   gradients that justified them, carve-outs, flushes, idle reaps, shed
//!   connections, sampled slow ops), each stamped with a monotonic sequence
//!   number and timestamp.
//!
//! Both are deliberately dependency-light (serde only) so every crate in
//! the workspace can use them without pulling server or loadgen machinery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod histogram;
pub mod journal;

pub use histogram::{Histogram, LatencySummary};
pub use journal::{EventKind, Journal, JournalEvent};
