//! The CI performance gate: compares a fresh shard-sweep report against the
//! committed `BENCH_*` baseline and fails on regressions.
//!
//! The repo's benchmark trajectory lives in `BENCH_PR<N>.json` files. Each
//! contains (possibly nested under a `"shard_sweep"` key) a
//! `cliffhanger-loadgen-sweep/v1` document with one point per shard count.
//! The gate matches points by *resolved* shard count and flags a point when
//! its throughput drops, or its p99 latency rises, by more than the allowed
//! fraction. Points whose embedded reports carry the server's scraped
//! `cliffhanger-stats/v1` telemetry document are additionally gated on the
//! server-side local/remote service-time p99s — but only when both
//! envelopes carry them, so pre-telemetry baselines stay comparable. Only
//! regressions fail: faster hardware sails through, and a shard count
//! present in just one of the two reports is reported as skipped rather
//! than guessed at.

use loadgen::{SCENARIO_MATRIX_SCHEMA, SCENARIO_SCHEMA, SWEEP_SCHEMA};
use serde_json::Value;

/// One metric comparison at one shard count.
#[derive(Clone, Debug)]
pub struct GateCheck {
    /// Shard count the points were matched on.
    pub shards: u64,
    /// `"throughput"` or `"p99"`.
    pub metric: &'static str,
    /// Baseline value (req/s or µs).
    pub baseline: f64,
    /// Current value (req/s or µs).
    pub current: f64,
    /// Relative change, positive = worse (throughput loss / latency gain).
    pub regression: f64,
    /// Whether the check stayed within the threshold.
    pub pass: bool,
}

/// The verdict over every matched shard count.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// All individual comparisons, in sweep order.
    pub checks: Vec<GateCheck>,
    /// Shard counts present in only one report (not gated).
    pub unmatched: Vec<u64>,
}

impl GateReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Human-readable summary lines.
    pub fn lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "{} {:>10}@{:<2} baseline {:>12.0}  current {:>12.0}  (regression {:+.1}%)",
                    if c.pass { "ok  " } else { "FAIL" },
                    c.metric,
                    c.shards,
                    c.baseline,
                    c.current,
                    c.regression * 100.0,
                )
            })
            .collect();
        for shards in &self.unmatched {
            out.push(format!("skip {shards} shards: present in only one report"));
        }
        out
    }
}

/// A sweep point reduced to what the gate compares.
#[derive(Clone, Copy, Debug)]
struct GatePoint {
    shards: u64,
    throughput_rps: f64,
    p99_us: f64,
    /// Server-side service-time p99s by command class, from the
    /// `cliffhanger-stats/v1` document the loadgen scrapes into
    /// `report.server_stats`. `None` when the report predates PR 7 (or the
    /// class recorded no samples), in which case the class is not gated —
    /// the committed baselines stay usable.
    server_local_p99_us: Option<f64>,
    server_remote_p99_us: Option<f64>,
}

/// Pulls one command class's service-time p99 out of a sweep point's
/// embedded server telemetry document; `None` unless the class actually
/// recorded samples (an empty histogram's p99 is 0, not evidence).
fn server_p99(point: &Value, class: &str) -> Option<f64> {
    let summary = point
        .get("report")?
        .get("server_stats")?
        .get("service_latency")?
        .get(class)?;
    if summary.get("count").and_then(Value::as_u64)? == 0 {
        return None;
    }
    summary.get("p99_us").and_then(Value::as_f64)
}

/// Extracts the sweep points from a JSON document: either a raw
/// `cliffhanger-loadgen-sweep/v1` report or a `BENCH_PR<N>.json` wrapper
/// holding one under `"shard_sweep"`.
fn sweep_points(json: &str) -> Result<Vec<GatePoint>, String> {
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let sweep = if value.get("schema").and_then(Value::as_str) == Some(SWEEP_SCHEMA) {
        &value
    } else if let Some(nested) = value.get("shard_sweep") {
        if nested.get("schema").and_then(Value::as_str) != Some(SWEEP_SCHEMA) {
            return Err(format!("shard_sweep is not a {SWEEP_SCHEMA} document"));
        }
        nested
    } else {
        return Err(format!(
            "no {SWEEP_SCHEMA} document found (neither at the top level nor under \"shard_sweep\")"
        ));
    };
    let points = sweep
        .get("points")
        .and_then(Value::as_array)
        .ok_or_else(|| "sweep has no points array".to_string())?;
    points
        .iter()
        .map(|p| {
            Ok(GatePoint {
                shards: p
                    .get("shards")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| "point without shards".to_string())?,
                throughput_rps: p
                    .get("throughput_rps")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "point without throughput_rps".to_string())?,
                p99_us: p
                    .get("p99_us")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "point without p99_us".to_string())?,
                server_local_p99_us: server_p99(p, "local"),
                server_remote_p99_us: server_p99(p, "remote"),
            })
        })
        .collect()
}

/// Compares `current` against `baseline`, allowing `threshold` relative
/// regression (0.20 = 20%) on throughput (lower is worse) and p99 latency
/// (higher is worse) at every shard count present in both reports.
pub fn compare_sweeps(baseline: &str, current: &str, threshold: f64) -> Result<GateReport, String> {
    let base = sweep_points(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = sweep_points(current).map_err(|e| format!("current: {e}"))?;
    let mut report = GateReport::default();
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.shards == b.shards) else {
            report.unmatched.push(b.shards);
            continue;
        };
        let throughput_regression = if b.throughput_rps > 0.0 {
            (b.throughput_rps - c.throughput_rps) / b.throughput_rps
        } else {
            0.0
        };
        report.checks.push(GateCheck {
            shards: b.shards,
            metric: "throughput",
            baseline: b.throughput_rps,
            current: c.throughput_rps,
            regression: throughput_regression,
            pass: throughput_regression <= threshold,
        });
        let p99_regression = if b.p99_us > 0.0 {
            (c.p99_us - b.p99_us) / b.p99_us
        } else {
            0.0
        };
        report.checks.push(GateCheck {
            shards: b.shards,
            metric: "p99",
            baseline: b.p99_us,
            current: c.p99_us,
            regression: p99_regression,
            pass: p99_regression <= threshold,
        });
        // Server-side service-time p99s are gated only when *both*
        // envelopes carry them — baselines recorded before the telemetry
        // plane existed simply contribute no server checks.
        for (metric, base_p99, cur_p99) in [
            (
                "server_local_p99",
                b.server_local_p99_us,
                c.server_local_p99_us,
            ),
            (
                "server_remote_p99",
                b.server_remote_p99_us,
                c.server_remote_p99_us,
            ),
        ] {
            let (Some(base_p99), Some(cur_p99)) = (base_p99, cur_p99) else {
                continue;
            };
            let regression = if base_p99 > 0.0 {
                (cur_p99 - base_p99) / base_p99
            } else {
                0.0
            };
            report.checks.push(GateCheck {
                shards: b.shards,
                metric,
                baseline: base_p99,
                current: cur_p99,
                regression,
                pass: regression <= threshold,
            });
        }
    }
    for c in &cur {
        if !base.iter().any(|b| b.shards == c.shards) {
            report.unmatched.push(c.shards);
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Scenario-matrix awareness: the same one-sided gate, keyed by
// scenario/phase instead of shard count.
// ---------------------------------------------------------------------------

/// One metric comparison at one scenario phase.
#[derive(Clone, Debug)]
pub struct ScenarioGateCheck {
    /// `scenario/phase` the points were matched on.
    pub label: String,
    /// `"throughput"` or `"p99"`.
    pub metric: &'static str,
    /// Baseline value (req/s or µs).
    pub baseline: f64,
    /// Current value (req/s or µs).
    pub current: f64,
    /// Relative change, positive = worse.
    pub regression: f64,
    /// Whether the check stayed within the threshold.
    pub pass: bool,
}

/// The verdict over every matched scenario phase.
#[derive(Clone, Debug, Default)]
pub struct ScenarioGateReport {
    /// All individual comparisons, in matrix order.
    pub checks: Vec<ScenarioGateCheck>,
    /// `scenario/phase` labels present in only one report (not gated).
    pub unmatched: Vec<String>,
}

impl ScenarioGateReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Human-readable summary lines.
    pub fn lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "{} {:>10} {:<24} baseline {:>12.0}  current {:>12.0}  (regression {:+.1}%)",
                    if c.pass { "ok  " } else { "FAIL" },
                    c.metric,
                    c.label,
                    c.baseline,
                    c.current,
                    c.regression * 100.0,
                )
            })
            .collect();
        for label in &self.unmatched {
            out.push(format!("skip {label}: present in only one report"));
        }
        out
    }
}

/// One scenario phase reduced to what the gate compares.
struct ScenarioPoint {
    label: String,
    throughput_rps: f64,
    p99_us: f64,
}

/// Extracts per-phase points from a scenario document: either a
/// `cliffhanger-scenario-matrix/v1` wrapper or a single
/// `cliffhanger-scenario/v1` report.
fn scenario_points(json: &str) -> Result<Vec<ScenarioPoint>, String> {
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let scenarios: Vec<&Value> = match value.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCENARIO_MATRIX_SCHEMA => value
            .get("scenarios")
            .and_then(Value::as_array)
            .ok_or_else(|| "matrix has no scenarios array".to_string())?
            .iter()
            .collect(),
        Some(s) if s == SCENARIO_SCHEMA => vec![&value],
        _ => {
            return Err(format!(
                "no {SCENARIO_MATRIX_SCHEMA} or {SCENARIO_SCHEMA} document found"
            ))
        }
    };
    let mut points = Vec::new();
    for scenario in scenarios {
        let name = scenario
            .get("scenario")
            .and_then(Value::as_str)
            .ok_or_else(|| "scenario without a name".to_string())?;
        let phases = scenario
            .get("phases")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("scenario {name} has no phases array"))?;
        for phase in phases {
            let phase_name = phase
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("scenario {name} has a phase without a name"))?;
            points.push(ScenarioPoint {
                label: format!("{name}/{phase_name}"),
                throughput_rps: phase
                    .get("throughput_rps")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{name}/{phase_name} lacks throughput_rps"))?,
                p99_us: phase
                    .get("latency")
                    .and_then(|l| l.get("p99_us"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{name}/{phase_name} lacks latency.p99_us"))?,
            });
        }
    }
    Ok(points)
}

/// Compares a current scenario matrix against a baseline one, allowing
/// `threshold` relative regression on per-phase throughput and p99 at
/// every `scenario/phase` present in both reports. One-sided, like
/// [`compare_sweeps`]: improvements always pass, and phases present in
/// only one report are skipped, not guessed at.
pub fn compare_scenario_matrices(
    baseline: &str,
    current: &str,
    threshold: f64,
) -> Result<ScenarioGateReport, String> {
    let base = scenario_points(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = scenario_points(current).map_err(|e| format!("current: {e}"))?;
    let mut report = ScenarioGateReport::default();
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.label == b.label) else {
            report.unmatched.push(b.label.clone());
            continue;
        };
        let throughput_regression = if b.throughput_rps > 0.0 {
            (b.throughput_rps - c.throughput_rps) / b.throughput_rps
        } else {
            0.0
        };
        report.checks.push(ScenarioGateCheck {
            label: b.label.clone(),
            metric: "throughput",
            baseline: b.throughput_rps,
            current: c.throughput_rps,
            regression: throughput_regression,
            pass: throughput_regression <= threshold,
        });
        let p99_regression = if b.p99_us > 0.0 {
            (c.p99_us - b.p99_us) / b.p99_us
        } else {
            0.0
        };
        report.checks.push(ScenarioGateCheck {
            label: b.label.clone(),
            metric: "p99",
            baseline: b.p99_us,
            current: c.p99_us,
            regression: p99_regression,
            pass: p99_regression <= threshold,
        });
    }
    for c in &cur {
        if !base.iter().any(|b| b.label == c.label) {
            report.unmatched.push(c.label.clone());
        }
    }
    Ok(report)
}

/// Whether a JSON document is a scenario report or matrix (as opposed to a
/// sweep / `BENCH_PR<N>.json` wrapper) — the bin uses this to dispatch.
pub fn is_scenario_document(json: &str) -> bool {
    serde_json::from_str::<Value>(json)
        .ok()
        .and_then(|v| {
            v.get("schema")
                .and_then(Value::as_str)
                .map(|s| s == SCENARIO_SCHEMA || s == SCENARIO_MATRIX_SCHEMA)
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_json(points: &[(u64, f64, f64)]) -> String {
        let points: Vec<String> = points
            .iter()
            .map(|(shards, rps, p99)| {
                format!(
                    "{{\"shards\":{shards},\"throughput_rps\":{rps},\"p99_us\":{p99},\
                     \"speedup_vs_baseline\":1.0,\"hit_rate\":0.9,\"report\":{{}}}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{SWEEP_SCHEMA}\",\"points\":[{}]}}",
            points.join(",")
        )
    }

    /// Points whose embedded reports carry the scraped server telemetry
    /// document: `(shards, rps, p99, server_local_p99, server_remote_p99)`.
    fn sweep_json_with_server(points: &[(u64, f64, f64, f64, f64)]) -> String {
        let points: Vec<String> = points
            .iter()
            .map(|(shards, rps, p99, local, remote)| {
                format!(
                    "{{\"shards\":{shards},\"throughput_rps\":{rps},\"p99_us\":{p99},\
                     \"speedup_vs_baseline\":1.0,\"hit_rate\":0.9,\"report\":{{\
                     \"server_stats\":{{\"service_latency\":{{\
                     \"local\":{{\"count\":1000,\"p99_us\":{local}}},\
                     \"remote\":{{\"count\":1000,\"p99_us\":{remote}}}}}}}}}}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{SWEEP_SCHEMA}\",\"points\":[{}]}}",
            points.join(",")
        )
    }

    #[test]
    fn identical_sweeps_pass() {
        let json = sweep_json(&[(1, 100_000.0, 900.0), (4, 250_000.0, 700.0)]);
        let report = compare_sweeps(&json, &json, 0.2).unwrap();
        assert!(report.passed());
        assert_eq!(report.checks.len(), 4);
        assert!(report.unmatched.is_empty());
    }

    #[test]
    fn faster_hardware_passes_one_sided() {
        let base = sweep_json(&[(2, 100_000.0, 900.0)]);
        let cur = sweep_json(&[(2, 400_000.0, 200.0)]);
        let report = compare_sweeps(&base, &cur, 0.2).unwrap();
        assert!(report.passed(), "improvements are never regressions");
    }

    #[test]
    fn throughput_regression_fails() {
        let base = sweep_json(&[(4, 100_000.0, 900.0)]);
        let cur = sweep_json(&[(4, 70_000.0, 900.0)]);
        let report = compare_sweeps(&base, &cur, 0.2).unwrap();
        assert!(!report.passed());
        let fail = report.checks.iter().find(|c| !c.pass).unwrap();
        assert_eq!(fail.metric, "throughput");
        assert!((fail.regression - 0.3).abs() < 1e-9);
        assert!(report.lines().iter().any(|l| l.starts_with("FAIL")));
    }

    #[test]
    fn p99_regression_fails() {
        let base = sweep_json(&[(8, 100_000.0, 500.0)]);
        let cur = sweep_json(&[(8, 100_000.0, 800.0)]);
        let report = compare_sweeps(&base, &cur, 0.2).unwrap();
        assert!(!report.passed());
        assert_eq!(report.checks.iter().filter(|c| !c.pass).count(), 1);
    }

    #[test]
    fn within_threshold_passes() {
        let base = sweep_json(&[(1, 100_000.0, 500.0)]);
        let cur = sweep_json(&[(1, 85_000.0, 590.0)]);
        let report = compare_sweeps(&base, &cur, 0.2).unwrap();
        assert!(report.passed(), "15% and 18% are inside the 20% budget");
    }

    #[test]
    fn bench_wrapper_is_accepted() {
        let sweep = sweep_json(&[(1, 100_000.0, 500.0)]);
        let wrapper = format!("{{\"pr\": 2, \"shard_sweep\": {sweep}}}");
        let report = compare_sweeps(&wrapper, &sweep, 0.2).unwrap();
        assert!(report.passed());
        assert_eq!(report.checks.len(), 2);
    }

    #[test]
    fn unmatched_shard_counts_are_skipped_not_guessed() {
        let base = sweep_json(&[(1, 100_000.0, 500.0), (8, 300_000.0, 400.0)]);
        let cur = sweep_json(&[(1, 100_000.0, 500.0), (2, 150_000.0, 450.0)]);
        let report = compare_sweeps(&base, &cur, 0.2).unwrap();
        assert!(report.passed());
        assert_eq!(report.checks.len(), 2, "only the 1-shard point is gated");
        assert_eq!(report.unmatched, vec![8, 2]);
    }

    #[test]
    fn server_p99_gates_when_both_envelopes_carry_it() {
        let base = sweep_json_with_server(&[(2, 100_000.0, 900.0, 50.0, 200.0)]);
        let same = compare_sweeps(&base, &base, 0.2).unwrap();
        assert!(same.passed());
        assert_eq!(
            same.checks.len(),
            4,
            "throughput, p99, and both server classes"
        );
        // A 3x server-side remote p99 regression fails even though the
        // client-visible numbers held.
        let cur = sweep_json_with_server(&[(2, 100_000.0, 900.0, 50.0, 600.0)]);
        let report = compare_sweeps(&base, &cur, 0.2).unwrap();
        assert!(!report.passed());
        let fail = report.checks.iter().find(|c| !c.pass).unwrap();
        assert_eq!(fail.metric, "server_remote_p99");
        assert!((fail.regression - 2.0).abs() < 1e-9);
    }

    #[test]
    fn server_p99_is_skipped_when_either_side_lacks_it() {
        // A pre-telemetry baseline against a current run that carries the
        // document: only the classic client-side checks are gated.
        let base = sweep_json(&[(2, 100_000.0, 900.0)]);
        let cur = sweep_json_with_server(&[(2, 100_000.0, 900.0, 50.0, 5_000.0)]);
        let report = compare_sweeps(&base, &cur, 0.2).unwrap();
        assert!(report.passed(), "no server baseline means no server gate");
        assert_eq!(report.checks.len(), 2);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(compare_sweeps("not json", "{}", 0.2).is_err());
        let ok = sweep_json(&[(1, 1.0, 1.0)]);
        assert!(compare_sweeps("{\"pr\": 3}", &ok, 0.2).is_err());
        assert!(compare_sweeps(&ok, "{\"schema\": \"something-else\"}", 0.2).is_err());
    }

    /// A scenario matrix with `(scenario, phase, rps, p99)` points.
    fn matrix_json(points: &[(&str, &str, f64, f64)]) -> String {
        let mut scenarios: Vec<(String, Vec<String>)> = Vec::new();
        for (scenario, phase, rps, p99) in points {
            let body = format!(
                "{{\"name\":\"{phase}\",\"throughput_rps\":{rps},\
                 \"latency\":{{\"count\":100,\"p99_us\":{p99}}}}}"
            );
            match scenarios.iter_mut().find(|(name, _)| name == scenario) {
                Some((_, phases)) => phases.push(body),
                None => scenarios.push((scenario.to_string(), vec![body])),
            }
        }
        let scenarios: Vec<String> = scenarios
            .iter()
            .map(|(name, phases)| {
                format!(
                    "{{\"schema\":\"{SCENARIO_SCHEMA}\",\"scenario\":\"{name}\",\
                     \"phases\":[{}]}}",
                    phases.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{SCENARIO_MATRIX_SCHEMA}\",\"scale\":1.0,\"scenarios\":[{}]}}",
            scenarios.join(",")
        )
    }

    #[test]
    fn identical_scenario_matrices_pass() {
        let json = matrix_json(&[
            ("scan_storm", "steady", 50_000.0, 900.0),
            ("scan_storm", "scan", 30_000.0, 4_000.0),
            ("conn_churn", "churn", 45_000.0, 1_100.0),
        ]);
        let report = compare_scenario_matrices(&json, &json, 0.2).unwrap();
        assert!(report.passed());
        assert_eq!(report.checks.len(), 6);
        assert!(report.unmatched.is_empty());
    }

    #[test]
    fn scenario_phase_regression_fails_with_its_label() {
        let base = matrix_json(&[("scan_storm", "recover", 50_000.0, 900.0)]);
        let cur = matrix_json(&[("scan_storm", "recover", 50_000.0, 2_000.0)]);
        let report = compare_scenario_matrices(&base, &cur, 0.2).unwrap();
        assert!(!report.passed());
        let fail = report.checks.iter().find(|c| !c.pass).unwrap();
        assert_eq!(fail.label, "scan_storm/recover");
        assert_eq!(fail.metric, "p99");
        assert!(report
            .lines()
            .iter()
            .any(|l| l.starts_with("FAIL") && l.contains("scan_storm/recover")));
    }

    #[test]
    fn scenario_phases_in_only_one_report_are_skipped() {
        let base = matrix_json(&[
            ("diurnal", "night", 2_000.0, 400.0),
            ("diurnal", "peak", 8_000.0, 700.0),
        ]);
        let cur = matrix_json(&[
            ("diurnal", "night", 2_000.0, 400.0),
            ("drift", "sliding", 40_000.0, 1_500.0),
        ]);
        let report = compare_scenario_matrices(&base, &cur, 0.2).unwrap();
        assert!(report.passed());
        assert_eq!(report.checks.len(), 2, "only diurnal/night is gated");
        assert_eq!(
            report.unmatched,
            vec!["diurnal/peak".to_string(), "drift/sliding".to_string()]
        );
    }

    #[test]
    fn single_scenario_reports_are_accepted_as_matrices() {
        let matrix = matrix_json(&[("slow_loris", "loris", 40_000.0, 1_000.0)]);
        // Pull the lone scenario document out of the wrapper and compare it
        // directly against the matrix form.
        let value: Value = serde_json::from_str(&matrix).unwrap();
        let single =
            serde_json::to_string(&value.get("scenarios").unwrap().as_array().unwrap()[0]).unwrap();
        let report = compare_scenario_matrices(&single, &matrix, 0.2).unwrap();
        assert!(report.passed());
        assert_eq!(report.checks.len(), 2);
    }

    #[test]
    fn scenario_document_sniffing_dispatches_correctly() {
        let matrix = matrix_json(&[("tenant_storm", "storm", 40_000.0, 1_000.0)]);
        assert!(is_scenario_document(&matrix));
        assert!(!is_scenario_document(&sweep_json(&[(1, 1.0, 1.0)])));
        assert!(!is_scenario_document("not json"));
        assert!(compare_scenario_matrices(&matrix, "{\"pr\": 3}", 0.2).is_err());
    }
}
