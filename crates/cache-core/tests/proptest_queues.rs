//! Property-based tests of the queue substrate: the LRU list is checked
//! against a naive reference model, and the shadow queue / slab cache
//! invariants are checked under arbitrary operation sequences.

use cache_core::lru::InsertPosition;
use cache_core::store::AllocationMode;
use cache_core::{
    CacheQueue, Key, LruList, PolicyKind, QueueConfig, ShadowQueue, SlabCache, SlabCacheConfig,
    SlabConfig, ITEM_OVERHEAD,
};
use proptest::prelude::*;

/// The operations the LRU model exercise can perform.
#[derive(Clone, Debug)]
enum LruOp {
    Insert(u8, u8),
    Access(u8),
    Remove(u8),
    PopLru,
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (any::<u8>(), 1..=64u8).prop_map(|(k, w)| LruOp::Insert(k, w)),
        any::<u8>().prop_map(LruOp::Access),
        any::<u8>().prop_map(LruOp::Remove),
        Just(LruOp::PopLru),
    ]
}

/// A naive reference LRU: a vector ordered from most- to least-recently used.
#[derive(Default)]
struct ModelLru {
    entries: Vec<(u8, u64)>,
}

impl ModelLru {
    fn insert(&mut self, key: u8, weight: u64) {
        self.entries.retain(|&(k, _)| k != key);
        self.entries.insert(0, (key, weight));
    }
    fn access(&mut self, key: u8) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            let entry = self.entries.remove(pos);
            self.entries.insert(0, entry);
            true
        } else {
            false
        }
    }
    fn remove(&mut self, key: u8) -> Option<u64> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }
    fn pop_lru(&mut self) -> Option<(u8, u64)> {
        self.entries.pop()
    }
    fn total_weight(&self) -> u64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The LRU list (with its segmented tail-region implementation) must be
    /// indistinguishable from the naive model for any operation sequence.
    #[test]
    fn lru_list_matches_reference_model(
        ops in prop::collection::vec(lru_op(), 1..300),
        tail_region in 0usize..16,
    ) {
        let mut real = LruList::with_tail_region(tail_region);
        let mut model = ModelLru::default();
        for op in ops {
            match op {
                LruOp::Insert(k, w) => {
                    real.insert(Key::new(k as u64), w as u64, InsertPosition::Top);
                    model.insert(k, w as u64);
                }
                LruOp::Access(k) => {
                    let real_hit = real.access(Key::new(k as u64)).is_some();
                    let model_hit = model.access(k);
                    prop_assert_eq!(real_hit, model_hit);
                }
                LruOp::Remove(k) => {
                    let real_removed = real.remove(Key::new(k as u64));
                    let model_removed = model.remove(k);
                    prop_assert_eq!(real_removed, model_removed);
                }
                LruOp::PopLru => {
                    let real_popped = real.pop_lru();
                    let model_popped = model.pop_lru();
                    prop_assert_eq!(
                        real_popped.map(|(k, w)| (k.raw() as u8, w)),
                        model_popped
                    );
                }
            }
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert_eq!(real.total_weight(), model.total_weight());
        }
    }

    /// A shadow queue never exceeds its capacity, never reports keys it does
    /// not hold, and always reports keys it just admitted (while within
    /// capacity).
    #[test]
    fn shadow_queue_capacity_and_membership(
        capacity in 1usize..64,
        keys in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let mut shadow = ShadowQueue::new(capacity);
        let mut recent: Vec<u8> = Vec::new();
        for k in keys {
            shadow.insert(Key::new(k as u64));
            recent.retain(|&r| r != k);
            recent.push(k);
            if recent.len() > capacity {
                recent.remove(0);
            }
            prop_assert!(shadow.len() <= capacity);
            // Every key in the recent window must be present.
            for &r in &recent {
                prop_assert!(shadow.contains(Key::new(r as u64)));
            }
            prop_assert_eq!(shadow.len(), recent.len());
        }
    }

    /// A cache queue never uses more bytes than its target, no matter what
    /// sizes are inserted, and probing evicted keys hits the shadow queue.
    #[test]
    fn cache_queue_respects_byte_budget(
        target_kb in 1u64..64,
        sizes in prop::collection::vec(1u64..4096, 1..200),
    ) {
        let target = target_kb * 1024;
        let mut queue: CacheQueue<()> = CacheQueue::new(QueueConfig {
            policy: PolicyKind::Lru,
            target_bytes: target,
            tail_region_items: 4,
            shadow_capacity: 32,
        });
        for (i, &size) in sizes.iter().enumerate() {
            queue.set(Key::new(i as u64), size, ());
            prop_assert!(queue.used_bytes() <= target);
            // Every resident item's charge is accounted.
            prop_assert_eq!(queue.contains(Key::new(i as u64)),
                size + ITEM_OVERHEAD <= target);
        }
    }

    /// The slab cache under first-come-first-serve never exceeds the
    /// application's reservation, for arbitrary size mixes.
    #[test]
    fn slab_cache_respects_reservation(
        reservation_kb in 8u64..128,
        requests in prop::collection::vec((any::<u16>(), 1u64..16_384), 1..300),
    ) {
        let total = reservation_kb * 1024;
        let mut cache: SlabCache<()> = SlabCache::new(SlabCacheConfig {
            slab: SlabConfig::default(),
            total_bytes: total,
            policy: PolicyKind::Lru,
            mode: AllocationMode::FirstComeFirstServe { page_size: 4 << 10 },
            shadow_bytes: 0,
            tail_region_items: 0,
        });
        for (key, size) in requests {
            let key = Key::new(key as u64);
            if cache.get(key, size).map(|r| !r.result.hit).unwrap_or(false) {
                cache.set(key, size, ());
            }
            prop_assert!(cache.used_bytes() <= total,
                "used {} > reservation {}", cache.used_bytes(), total);
        }
    }
}
