//! The synthetic Memcachier-like trace (the paper's evaluation substrate).
//!
//! The real week-long Memcachier trace of the top 20 applications is not
//! public, so this module builds a synthetic stand-in with the properties the
//! paper's analysis actually depends on (DESIGN.md §1 records the
//! substitution argument):
//!
//! * twenty applications with very different request shares, key-universe
//!   sizes, item-size mixes and reservations, so that some are
//!   over-provisioned (hit rates in the high 90s) and some are starved;
//! * six applications (1, 7, 10, 11, 18, 19 — the asterisked ones in
//!   Figure 2) with sequential-scan components that put performance cliffs
//!   into their hit-rate curves;
//! * applications 4 and 6 with a strongly size-imbalanced mix, the situation
//!   Table 1 examines;
//! * application 5 with a phase change that moves its traffic between slab
//!   classes over the week (the behaviour Figure 8 visualises);
//! * application 19 with steep cliffs in both of its slab classes (Table 4,
//!   Figures 4 and 9).
//!
//! Absolute hit rates differ from the proprietary trace; orderings and
//! qualitative behaviour (who benefits from what) are what the experiments
//! reproduce.

use crate::app_profile::{AppProfile, Phase};
use crate::sizes::SizeDistribution;
use crate::trace::Trace;
use crate::zipf::KeyPopularity;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic Memcachier-like trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemcachierConfig {
    /// Total number of requests across all applications.
    pub total_requests: u64,
    /// Trace duration in (simulated) seconds; the paper's trace covers a
    /// week.
    pub duration_secs: u64,
    /// Seed for all request generation.
    pub seed: u64,
    /// Scale factor applied to every application's key universe and memory
    /// reservation (1.0 = the defaults below; smaller values make quick
    /// tests cheap).
    pub scale: f64,
}

impl Default for MemcachierConfig {
    fn default() -> Self {
        MemcachierConfig {
            total_requests: 2_000_000,
            duration_secs: 7 * 24 * 3_600,
            seed: 0x4d43_4143, // "MCAC"
            scale: 1.0,
        }
    }
}

impl MemcachierConfig {
    /// A configuration sized for fast unit tests.
    pub fn small(total_requests: u64) -> Self {
        MemcachierConfig {
            total_requests,
            duration_secs: 24 * 3_600,
            scale: 0.25,
            ..MemcachierConfig::default()
        }
    }
}

fn scaled(value: u64, scale: f64) -> u64 {
    ((value as f64 * scale).round() as u64).max(1)
}

/// The twenty application profiles, in paper order (application ids 1–20).
// One `push` per application keeps each profile next to the prose
// describing it; a single `vec![...]` literal would lose that structure.
#[allow(clippy::vec_init_then_push)]
pub fn memcachier_apps(scale: f64) -> Vec<AppProfile> {
    let s = scale;
    // Size mixes reused by several applications.
    let small_values = SizeDistribution::LogNormal {
        mu: 5.3,
        sigma: 0.6,
        cap: 2_048,
    };
    let mixed_values = SizeDistribution::Mixture(vec![
        (0.6, SizeDistribution::Uniform { min: 48, max: 300 }),
        (
            0.3,
            SizeDistribution::Uniform {
                min: 301,
                max: 2_048,
            },
        ),
        (
            0.1,
            SizeDistribution::Uniform {
                min: 2_049,
                max: 16_384,
            },
        ),
    ]);

    let mut apps = Vec::new();

    // Application 1*: the giant tenant. Huge key universe, mild skew, a scan
    // component, and a reservation that cannot hold the working set.
    apps.push(
        AppProfile::simple(
            1,
            "app01-giant",
            0.30,
            scaled(8 << 20, s),
            Phase::zipf(scaled(150_000, s), 0.70, mixed_values.clone())
                .with_scan(0.15, scaled(40_000, s)),
        )
        .with_cliff(),
    );
    // Application 2: heavily under-provisioned, low skew -> low hit rate.
    apps.push(AppProfile::simple(
        2,
        "app02-starved",
        0.08,
        scaled(1 << 20, s),
        Phase::zipf(scaled(90_000, s), 0.55, small_values.clone()),
    ));
    // Application 3: comfortably provisioned, high skew -> ~98% hit rate.
    apps.push(AppProfile::simple(
        3,
        "app03-comfy",
        0.06,
        scaled(4 << 20, s),
        Phase::zipf(scaled(9_000, s), 1.05, mixed_values.clone()),
    ));
    // Application 4: size-imbalanced (Table 1): 9% of GETs are small and
    // always hit; 91% are large and carry all the misses.
    apps.push(AppProfile::simple(
        4,
        "app04-large-heavy",
        0.06,
        scaled(6 << 20, s),
        Phase {
            fraction: 1.0,
            popularity: KeyPopularity::HotSet {
                num_keys: scaled(40_000, s),
                hot_keys: scaled(1_500, s),
                hot_fraction: 0.60,
            },
            sizes: SizeDistribution::Mixture(vec![
                (0.20, SizeDistribution::Fixed(96)),
                (
                    0.80,
                    SizeDistribution::Uniform {
                        min: 2_048,
                        max: 8_192,
                    },
                ),
            ]),
            scan_fraction: 0.0,
            scan_length: 0,
            key_offset: 0,
        },
    ));
    // Application 5: well provisioned but with a mid-week phase change that
    // moves traffic from small slab classes to larger ones (Figure 8).
    apps.push(AppProfile {
        app: cache_core::AppId::new(5),
        name: "app05-phased".into(),
        request_share: 0.07,
        get_fraction: 0.97,
        reserved_bytes: scaled(4 << 20, s),
        has_cliff: false,
        phases: vec![
            Phase::zipf(
                scaled(12_000, s),
                1.0,
                SizeDistribution::Uniform { min: 64, max: 512 },
            )
            .with_fraction(0.45),
            Phase::zipf(
                scaled(9_000, s),
                1.0,
                SizeDistribution::Uniform {
                    min: 1_024,
                    max: 4_096,
                },
            )
            .with_fraction(0.35)
            .with_key_offset(1 << 24),
            Phase::zipf(
                scaled(6_000, s),
                1.0,
                SizeDistribution::Uniform {
                    min: 4_096,
                    max: 16_384,
                },
            )
            .with_fraction(0.20)
            .with_key_offset(1 << 25),
        ],
    });
    // Application 6: the slab-misallocation case of Table 1 — the dominant
    // (by GETs) middle class is starved under first-come-first-serve because
    // large items grab the memory first.
    apps.push(AppProfile::simple(
        6,
        "app06-misallocated",
        0.05,
        scaled(3 << 20, s),
        Phase {
            fraction: 1.0,
            popularity: KeyPopularity::Zipf {
                num_keys: scaled(30_000, s),
                exponent: 0.85,
            },
            sizes: SizeDistribution::Mixture(vec![
                (0.01, SizeDistribution::Fixed(80)),
                (0.70, SizeDistribution::Fixed(400)),
                (
                    0.29,
                    SizeDistribution::Uniform {
                        min: 8_192,
                        max: 32_768,
                    },
                ),
            ]),
            scan_fraction: 0.0,
            scan_length: 0,
            key_offset: 0,
        },
    ));
    // Application 7*: scan dominated.
    apps.push(
        AppProfile::simple(
            7,
            "app07-scanner",
            0.04,
            scaled(2 << 20, s),
            Phase::zipf(scaled(15_000, s), 0.9, small_values.clone())
                .with_scan(0.55, scaled(22_000, s)),
        )
        .with_cliff(),
    );
    // Application 8: medium, well provisioned.
    apps.push(AppProfile::simple(
        8,
        "app08-medium",
        0.04,
        scaled(2 << 20, s),
        Phase::zipf(scaled(18_000, s), 1.05, small_values.clone()),
    ));
    // Application 9: modest skew, slightly starved — the incremental
    // algorithm tracks it better than a week-long solver profile.
    apps.push(AppProfile::simple(
        9,
        "app09-drifting",
        0.04,
        scaled(1_500 << 10, s),
        Phase::zipf(scaled(35_000, s), 0.80, small_values.clone()),
    ));
    // Application 10*: scan component over a mid-sized database.
    apps.push(
        AppProfile::simple(
            10,
            "app10-batchjob",
            0.03,
            scaled(1_500 << 10, s),
            Phase::zipf(scaled(12_000, s), 0.95, mixed_values.clone())
                .with_scan(0.40, scaled(14_000, s)),
        )
        .with_cliff(),
    );
    // Application 11*: the Figure 3 cliff — scan dominated, small reservation.
    apps.push(
        AppProfile::simple(
            11,
            "app11-cliff",
            0.03,
            scaled(1 << 20, s),
            Phase::zipf(scaled(6_000, s), 0.9, SizeDistribution::Fixed(96))
                .with_scan(0.70, scaled(12_000, s)),
        )
        .with_cliff(),
    );
    // Applications 12–13: healthy mid-sized tenants.
    apps.push(AppProfile::simple(
        12,
        "app12-healthy",
        0.03,
        scaled(2 << 20, s),
        Phase::zipf(scaled(10_000, s), 1.0, small_values.clone()),
    ));
    apps.push(AppProfile::simple(
        13,
        "app13-healthy",
        0.03,
        scaled(2 << 20, s),
        Phase::zipf(scaled(22_000, s), 0.95, small_values.clone()),
    ));
    // Application 14: size-imbalanced, benefits strongly from reallocation.
    apps.push(AppProfile::simple(
        14,
        "app14-imbalanced",
        0.02,
        scaled(2 << 20, s),
        Phase {
            fraction: 1.0,
            popularity: KeyPopularity::Zipf {
                num_keys: scaled(20_000, s),
                exponent: 0.9,
            },
            sizes: SizeDistribution::Mixture(vec![
                (0.75, SizeDistribution::Fixed(128)),
                (
                    0.25,
                    SizeDistribution::Uniform {
                        min: 4_096,
                        max: 16_384,
                    },
                ),
            ]),
            scan_fraction: 0.0,
            scan_length: 0,
            key_offset: 0,
        },
    ));
    // Application 15: starved long-tail tenant.
    apps.push(AppProfile::simple(
        15,
        "app15-longtail",
        0.02,
        scaled(1 << 20, s),
        Phase::zipf(scaled(28_000, s), 0.70, small_values.clone()),
    ));
    // Applications 16–17: size-imbalanced, mid-sized.
    apps.push(AppProfile::simple(
        16,
        "app16-imbalanced",
        0.02,
        scaled(2 << 20, s),
        Phase {
            fraction: 1.0,
            popularity: KeyPopularity::Zipf {
                num_keys: scaled(16_000, s),
                exponent: 0.9,
            },
            sizes: SizeDistribution::Mixture(vec![
                (0.65, SizeDistribution::Fixed(192)),
                (
                    0.35,
                    SizeDistribution::Uniform {
                        min: 2_048,
                        max: 12_288,
                    },
                ),
            ]),
            scan_fraction: 0.0,
            scan_length: 0,
            key_offset: 0,
        },
    ));
    apps.push(AppProfile::simple(
        17,
        "app17-imbalanced",
        0.02,
        scaled(2 << 20, s),
        Phase {
            fraction: 1.0,
            popularity: KeyPopularity::Zipf {
                num_keys: scaled(14_000, s),
                exponent: 0.95,
            },
            sizes: SizeDistribution::Mixture(vec![
                (0.55, SizeDistribution::Fixed(256)),
                (
                    0.45,
                    SizeDistribution::Uniform {
                        min: 1_024,
                        max: 8_192,
                    },
                ),
            ]),
            scan_fraction: 0.0,
            scan_length: 0,
            key_offset: 0,
        },
    ));
    // Application 18*: scanning tenant where a concavity-assuming solver
    // misjudges the curve.
    apps.push(
        AppProfile::simple(
            18,
            "app18-mixed-scan",
            0.02,
            scaled(1 << 20, s),
            Phase::zipf(scaled(8_000, s), 1.0, small_values.clone())
                .with_scan(0.45, scaled(9_000, s)),
        )
        .with_cliff(),
    );
    // Application 19*: steep cliffs in both of its slab classes (Table 4,
    // Figures 4 and 9): two scanned databases of different item sizes.
    apps.push(AppProfile {
        app: cache_core::AppId::new(19),
        name: "app19-double-cliff".into(),
        request_share: 0.02,
        get_fraction: 0.98,
        reserved_bytes: scaled(1_500 << 10, s),
        has_cliff: true,
        phases: vec![
            // Slab class 0: small items, scanned.
            Phase::zipf(scaled(2_000, s), 0.8, SizeDistribution::Fixed(80))
                .with_fraction(0.6)
                .with_scan(0.85, scaled(11_000, s)),
            // Slab class 1: larger items, also scanned.
            Phase::zipf(scaled(1_500, s), 0.8, SizeDistribution::Fixed(700))
                .with_fraction(0.4)
                .with_key_offset(1 << 26)
                .with_scan(0.80, scaled(2_500, s)),
        ],
    });
    // Application 20: small, comfortable tenant.
    apps.push(AppProfile::simple(
        20,
        "app20-small",
        0.02,
        scaled(1 << 20, s),
        Phase::zipf(scaled(4_000, s), 1.1, small_values),
    ));

    apps
}

/// Builds the interleaved multi-application trace.
pub fn memcachier_trace(config: &MemcachierConfig) -> Trace {
    let apps = memcachier_apps(config.scale);
    trace_for_apps(&apps, config)
}

/// Builds an interleaved trace for an arbitrary set of application profiles.
pub fn trace_for_apps(apps: &[AppProfile], config: &MemcachierConfig) -> Trace {
    let total_share: f64 = apps.iter().map(|a| a.request_share.max(0.0)).sum();
    let total_share = if total_share <= 0.0 { 1.0 } else { total_share };
    let per_app_requests: Vec<u64> = apps
        .iter()
        .map(|a| {
            ((a.request_share.max(0.0) / total_share) * config.total_requests as f64).round() as u64
        })
        .collect();
    let mut generators: Vec<_> = apps
        .iter()
        .zip(&per_app_requests)
        .map(|(a, &n)| a.generator(config.seed).with_expected_total(n.max(1)))
        .collect();
    let mut remaining = per_app_requests.clone();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1e7e_aced);
    let total: u64 = remaining.iter().sum();
    let mut trace = Trace::new();
    let mut issued = 0u64;
    while issued < total {
        // Weighted pick proportional to the remaining budget of each app, so
        // applications stay interleaved at their request shares all the way
        // through the trace.
        let left: u64 = remaining.iter().sum();
        if left == 0 {
            break;
        }
        let mut pick = rng.gen_range(0..left);
        let mut chosen = 0usize;
        for (i, &r) in remaining.iter().enumerate() {
            if pick < r {
                chosen = i;
                break;
            }
            pick -= r;
        }
        let time = issued * config.duration_secs / total.max(1);
        trace.push(generators[chosen].next_request(time));
        remaining[chosen] -= 1;
        issued += 1;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_core::AppId;

    #[test]
    fn twenty_apps_with_paper_properties() {
        let apps = memcachier_apps(1.0);
        assert_eq!(apps.len(), 20);
        // Six asterisked applications.
        let cliffy: Vec<u32> = apps
            .iter()
            .filter(|a| a.has_cliff)
            .map(|a| a.app.0)
            .collect();
        assert_eq!(cliffy, vec![1, 7, 10, 11, 18, 19]);
        // Application ids are 1..=20 in order.
        let ids: Vec<u32> = apps.iter().map(|a| a.app.0).collect();
        assert_eq!(ids, (1..=20).collect::<Vec<_>>());
        // Application 1 dominates the request share.
        let max_share = apps
            .iter()
            .max_by(|a, b| a.request_share.partial_cmp(&b.request_share).unwrap())
            .unwrap();
        assert_eq!(max_share.app.0, 1);
        // Application 5 has multiple phases, application 19 has two.
        assert!(apps[4].phases.len() >= 3);
        assert_eq!(apps[18].phases.len(), 2);
    }

    #[test]
    fn scale_shrinks_universes_and_reservations() {
        let full = memcachier_apps(1.0);
        let tiny = memcachier_apps(0.1);
        for (f, t) in full.iter().zip(&tiny) {
            assert!(t.reserved_bytes <= f.reserved_bytes);
            for (fp, tp) in f.phases.iter().zip(&t.phases) {
                assert!(tp.popularity.num_keys() <= fp.popularity.num_keys());
            }
        }
    }

    #[test]
    fn trace_respects_request_shares() {
        let config = MemcachierConfig {
            total_requests: 100_000,
            scale: 0.1,
            ..MemcachierConfig::default()
        };
        let trace = memcachier_trace(&config);
        assert!((trace.len() as i64 - 100_000i64).abs() < 100);
        let summary = trace.summary();
        let app1 = summary.requests_per_app[&AppId::new(1)] as f64 / trace.len() as f64;
        // App 1's normalised share is 0.30 / 1.10 ~= 0.273.
        assert!((app1 - 0.273).abs() < 0.03, "app1 share = {app1}");
        let app20 = summary.requests_per_app[&AppId::new(20)] as f64 / trace.len() as f64;
        assert!(app20 < 0.03);
        assert_eq!(summary.requests_per_app.len(), 20);
    }

    #[test]
    fn trace_is_deterministic_and_time_ordered() {
        let config = MemcachierConfig::small(20_000);
        let a = memcachier_trace(&config);
        let b = memcachier_trace(&config);
        assert_eq!(a, b);
        assert!(a.requests.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn apps_are_interleaved_throughout_the_trace() {
        let config = MemcachierConfig::small(50_000);
        let trace = memcachier_trace(&config);
        // Split the trace in quarters; the dominant app must appear in all.
        let quarter = trace.len() / 4;
        for q in 0..4 {
            let slice = &trace.requests[q * quarter..(q + 1) * quarter];
            assert!(
                slice.iter().any(|r| r.app == AppId::new(1)),
                "app 1 missing from quarter {q}"
            );
            assert!(
                slice.iter().any(|r| r.app != AppId::new(1)),
                "quarter {q} contains only app 1"
            );
        }
    }

    #[test]
    fn sizes_spread_across_slab_classes() {
        let config = MemcachierConfig::small(30_000);
        let trace = memcachier_trace(&config);
        let slab = cache_core::SlabConfig::default();
        let mut classes = std::collections::HashSet::new();
        for r in trace.iter() {
            if let Some(c) = slab.class_for_size(r.size as u64) {
                classes.insert(c);
            }
        }
        assert!(
            classes.len() >= 6,
            "the mix should span many slab classes, got {}",
            classes.len()
        );
    }
}
