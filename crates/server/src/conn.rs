//! The per-connection state machine the reactor drives.
//!
//! Each connection owns a non-blocking socket, a read buffer, a resumable
//! [`Parser`] and a pending-output buffer. The reactor calls
//! [`Connection::on_ready`] with the epoll readiness it observed; the
//! connection reads whatever the socket has, executes every complete
//! command, and writes as much of the accumulated response bytes as the
//! socket accepts. Nothing here ever blocks:
//!
//! * a *read* that would block simply ends the fill pass — the loop's
//!   level-triggered `EPOLLIN` re-arms it;
//! * a *write* that would block parks the unsent bytes and switches the
//!   connection onto `EPOLLOUT` (write backpressure) — and once more than
//!   [`OUT_HIGH_WATERMARK`] bytes are parked, the connection also stops
//!   reading and parsing, so a client that requests faster than it reads
//!   responses is throttled by TCP instead of ballooning server memory.
//!
//! The command semantics (and every byte on the wire) are identical to the
//! old blocking handler; only the scheduling changed.
//!
//! Known trade-off: commands execute inline on the event-loop thread, so a
//! heavyweight one (`flush_all` rebuilding a tenant's engines, `app_create`
//! carving budget out of every engine, a large `stats` sweep) briefly
//! head-of-line blocks the other connections owned by the *same* loop —
//! Memcached's worker threads have the same property. Other loops are
//! unaffected. Offloading admin commands to a helper thread is a tracked
//! ROADMAP item; the data-path commands (get/set/delete) are all O(1)-ish
//! and unaffected.

use crate::backend::SharedCache;
use crate::protocol::{encode_response, Command, ParseOutcome, Parser, Response, StoreVerb, Value};
use bytes::BytesMut;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};

use crate::reactor::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Pending-output bytes above which the connection stops reading and
/// parsing until the socket drains (and above which a pipelined batch is
/// cut, matching the old handler's flush threshold).
pub(crate) const OUT_HIGH_WATERMARK: usize = 256 * 1024;
/// Bytes read from the socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;
/// Bytes buffered per fill pass before yielding back to the loop, so one
/// fire-hosing connection cannot starve its siblings (level-triggered
/// epoll re-schedules it immediately).
const IN_FILL_BUDGET: usize = 256 * 1024;

/// What the reactor should do with the connection after a readiness pass.
pub(crate) enum Drive {
    /// Keep it registered with this interest set.
    Keep {
        /// Desired epoll interest bits.
        interest: u32,
        /// Whether they differ from the currently registered set.
        changed: bool,
    },
    /// Deregister and drop it.
    Close,
}

/// How an I/O pass left the socket.
#[derive(PartialEq)]
enum Flow {
    /// Still usable.
    Open,
    /// The peer closed its writing half (serve what is buffered, then
    /// close).
    Eof,
    /// Hard I/O error: close now.
    Broken,
}

/// One client connection: socket, buffers, parser and session state.
pub(crate) struct Connection {
    stream: TcpStream,
    parser: Parser,
    inbuf: BytesMut,
    out: Vec<u8>,
    /// Bytes of `out` already written to the socket.
    out_pos: usize,
    /// The session's tenant namespace (`app <name>` switches it; index 0 —
    /// the default tenant — until then).
    tenant: usize,
    /// The interest set currently registered with epoll.
    interest: u32,
    /// Quit or EOF observed: flush the remaining output, then close.
    draining: bool,
}

/// What one parse-and-execute pass produced.
enum Step {
    /// Number of commands executed (0 = waiting for bytes or backpressured).
    Parsed(usize),
    /// The client sent `quit`.
    Quit,
}

impl Connection {
    /// Takes ownership of a freshly accepted socket, making it non-blocking.
    pub(crate) fn adopt(stream: TcpStream) -> std::io::Result<Connection> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            parser: Parser::new(),
            inbuf: BytesMut::with_capacity(READ_CHUNK),
            out: Vec::with_capacity(READ_CHUNK),
            out_pos: 0,
            tenant: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            draining: false,
        })
    }

    /// The socket's fd, for epoll registration.
    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// The currently desired epoll interest set.
    pub(crate) fn interest(&self) -> u32 {
        self.interest
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// One readiness pass: flush, fill, then parse/execute/flush until
    /// quiescent.
    pub(crate) fn on_ready(
        &mut self,
        readable: bool,
        writable: bool,
        cache: &SharedCache,
    ) -> Drive {
        if writable && self.flush() == Flow::Broken {
            return Drive::Close;
        }
        if readable && !self.draining {
            match self.fill() {
                Flow::Broken => return Drive::Close,
                Flow::Eof => self.draining = true,
                Flow::Open => {}
            }
        }
        // Parsing can be resumed by a flush that drains the output below
        // the watermark, so alternate the two until neither makes progress.
        loop {
            let parsed = match self.process(cache) {
                Step::Parsed(n) => n,
                Step::Quit => {
                    // Commands pipelined after `quit` are never parsed,
                    // exactly like the blocking handler's early return.
                    self.draining = true;
                    self.inbuf.clear();
                    0
                }
            };
            if self.flush() == Flow::Broken {
                return Drive::Close;
            }
            if parsed == 0 || self.pending_out() > 0 {
                break;
            }
        }
        if self.draining && self.pending_out() == 0 {
            return Drive::Close;
        }
        let mut want = 0;
        if self.pending_out() > 0 {
            want |= EPOLLOUT;
        }
        if !self.draining && self.pending_out() < OUT_HIGH_WATERMARK {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        let changed = want != self.interest;
        self.interest = want;
        Drive::Keep {
            interest: want,
            changed,
        }
    }

    /// Reads whatever the socket has (bounded per pass).
    fn fill(&mut self) -> Flow {
        let mut chunk = [0u8; READ_CHUNK];
        let mut taken = 0usize;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Flow::Eof,
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    if taken >= IN_FILL_BUDGET {
                        return Flow::Open;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flow::Open,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Flow::Broken,
            }
        }
    }

    /// Parses and executes buffered commands until the input runs dry, the
    /// output backs up past the watermark, or the client quits.
    fn process(&mut self, cache: &SharedCache) -> Step {
        let mut parsed = 0;
        while self.pending_out() < OUT_HIGH_WATERMARK {
            match self.parser.parse(&mut self.inbuf) {
                ParseOutcome::Complete(Command::Quit) => return Step::Quit,
                ParseOutcome::Complete(command) => {
                    parsed += 1;
                    let (response, suppress) = execute(&command, cache, &mut self.tenant);
                    if !suppress {
                        encode_response(&response, &mut self.out);
                    }
                }
                ParseOutcome::Invalid(message) => {
                    parsed += 1;
                    encode_response(&Response::ClientError(message), &mut self.out);
                }
                ParseOutcome::Incomplete => break,
            }
        }
        Step::Parsed(parsed)
    }

    /// Writes as much parked output as the socket accepts.
    fn flush(&mut self) -> Flow {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Flow::Broken,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Flow::Broken,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
            self.out.shrink_to(OUT_HIGH_WATERMARK);
        } else if self.out_pos >= OUT_HIGH_WATERMARK {
            // Reclaim the written prefix so a long-parked connection does
            // not hold both the sent and unsent halves forever.
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Flow::Open
    }
}

/// Executes a command against the cache in the session's tenant namespace;
/// returns the response and whether the reply should be suppressed
/// (`noreply`). `app <name>` mutates the session's tenant.
pub(crate) fn execute(
    command: &Command,
    cache: &SharedCache,
    tenant: &mut usize,
) -> (Response, bool) {
    match command {
        Command::Get { keys } => {
            let values = keys
                .iter()
                .filter_map(|key| {
                    cache.get_for(*tenant, key).map(|(flags, data)| Value {
                        key: key.clone(),
                        flags,
                        data,
                    })
                })
                .collect();
            (Response::Values(values), false)
        }
        Command::Store {
            verb,
            key,
            flags,
            data,
            noreply,
            ..
        } => {
            let stored = match verb {
                StoreVerb::Set => cache.set_for(*tenant, key, *flags, data.clone()),
                StoreVerb::Add => cache.add_for(*tenant, key, *flags, data.clone()),
                StoreVerb::Replace => cache.replace_for(*tenant, key, *flags, data.clone()),
            };
            let response = if stored {
                Response::Stored
            } else {
                Response::NotStored
            };
            (response, *noreply)
        }
        Command::Delete { key, noreply } => {
            let response = if cache.delete_for(*tenant, key) {
                Response::Deleted
            } else {
                Response::NotFound
            };
            (response, *noreply)
        }
        Command::App { id } => {
            let response = match std::str::from_utf8(id)
                .ok()
                .and_then(|name| cache.tenant_index(name))
            {
                Some(index) => {
                    *tenant = index;
                    Response::Ok
                }
                None => Response::ClientError(format!(
                    "unknown app {:?} (hosted: {})",
                    String::from_utf8_lossy(id),
                    cache.tenant_names().join(", ")
                )),
            };
            (response, false)
        }
        Command::AppCreate { name, weight } => {
            let response = match std::str::from_utf8(name) {
                Ok(name) => match cache.create_tenant(name, *weight) {
                    Ok(_) => Response::Ok,
                    Err(reason) => Response::ClientError(reason),
                },
                Err(_) => Response::ClientError("app names must be UTF-8".to_string()),
            };
            (response, false)
        }
        Command::AppList => {
            let apps = cache
                .app_list()
                .into_iter()
                .map(|(name, weight, budget_bytes)| crate::protocol::AppEntry {
                    name,
                    weight,
                    budget_bytes,
                })
                .collect();
            (Response::Apps(apps), false)
        }
        Command::Stats => (Response::Stats(cache.stats()), false),
        Command::Version => (
            Response::Version("cliffhanger-cache 0.1.0".to_string()),
            false,
        ),
        Command::FlushAll => {
            // Tenant-scoped: one application flushing its namespace must
            // never wipe another application's working set. On a
            // single-tenant server this clears everything, as before.
            cache.flush_tenant(*tenant);
            (Response::Ok, false)
        }
        Command::Quit => (Response::Ok, false),
    }
}
