//! End-to-end checks of the resilience scenario engine through the public
//! facade: a custom phased scenario against a real self-hosted server, with
//! chaos active, exact phase accounting, invariant verdicts in both
//! polarities, and the named-scenario registry wired to the same engine.

use loadgen::scenario::{
    evaluate_invariants, named_scenario, run_scenario, Chaos, Invariant, Phase, Scenario,
};

fn tiny_scenario(name: &str, phases: Vec<Phase>) -> Scenario {
    Scenario {
        name: name.to_string(),
        description: "facade test scenario".to_string(),
        total_bytes: 8 << 20,
        shards: 1,
        workers: 1,
        connections: 2,
        pipeline: 8,
        warmup_keys: 300,
        fill_on_miss: false,
        hot_key_promote: false,
        tenants: Vec::new(),
        phases,
        chaos: Vec::new(),
        invariants: vec![
            Invariant::ZeroErrors,
            Invariant::BudgetConservation,
            Invariant::ConnectionsReturnToBaseline,
        ],
        scale: 1.0,
    }
}

#[test]
fn phased_run_under_chaos_accounts_every_phase_exactly() {
    let mut scenario = tiny_scenario(
        "facade_churn",
        vec![
            Phase::steady("first", 600, 1_000, 1.0),
            Phase::steady("second", 900, 1_000, 0.8),
        ],
    );
    // Keep the window open long enough for the churn actor to land real
    // connections while the drivers run.
    scenario.phases[1].rate = Some(2_000.0);
    scenario.chaos = vec![Chaos::ConnChurn { per_sec: 100.0 }];

    let report = run_scenario(&scenario).expect("scenario runs");

    // Phase transitions happen at exact request boundaries: each phase
    // accounts for precisely its budget (no fills configured), and the
    // phases appear in order.
    assert_eq!(report.phases.len(), 2);
    assert_eq!(report.phases[0].name, "first");
    assert_eq!(report.phases[0].requests, 600);
    assert_eq!(report.phases[1].name, "second");
    assert_eq!(report.phases[1].requests, 900);
    assert_eq!(report.requests, 1_500);

    // The open phase is schedule-bound: 900 requests at 2k rps cannot
    // complete much faster than 0.45 s.
    assert!(
        report.phases[1].elapsed_secs >= 0.45 * 0.9,
        "open phase must pace its schedule, took {:.3}s",
        report.phases[1].elapsed_secs
    );

    // The churn actor really ran, and the server drained its connections
    // afterwards — the scraped verdicts all hold.
    assert!(
        report.chaos.churn_conns_opened > 0,
        "churn actor never connected"
    );
    assert!(report.passed, "invariants failed: {:?}", report.invariants);
    assert_eq!(report.schema, loadgen::SCENARIO_SCHEMA);
    assert!(report.server_stats.is_some(), "stats document was scraped");
}

#[test]
fn broken_p99_bound_fails_with_the_invariant_name() {
    let mut scenario = tiny_scenario(
        "facade_broken",
        vec![Phase::steady("only", 500, 1_000, 1.0)],
    );
    scenario.override_p99(0.0);

    let report = run_scenario(&scenario).expect("scenario runs");
    assert!(!report.passed, "a 0µs p99 bound cannot hold");
    let failed: Vec<_> = report.invariants.iter().filter(|v| !v.pass).collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].name, "p99_bounded[only]");
    assert!(
        failed[0].detail.contains("bound 0"),
        "detail names the bound: {}",
        failed[0].detail
    );

    // Re-evaluating the same collected report against a sane bound passes:
    // evaluation is pure over the report.
    let verdicts = evaluate_invariants(
        &[Invariant::PhaseP99Below {
            phase: "only".to_string(),
            max_us: 60_000_000.0,
        }],
        &report,
    );
    assert!(verdicts[0].pass);
}

#[test]
fn named_scenarios_run_through_the_same_engine_when_downscaled() {
    // The cheapest registry entry, scaled to the floor: proves the named
    // scenarios and the engine agree end to end without a long run.
    let scenario = named_scenario("scan_storm")
        .expect("scan_storm is registered")
        .scaled(0.004);
    let report = run_scenario(&scenario).expect("scenario runs");
    assert_eq!(report.scenario, "scan_storm");
    assert_eq!(report.phases.len(), 3);
    assert!(report.passed, "invariants failed: {:?}", report.invariants);
}
