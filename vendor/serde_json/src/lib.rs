//! Minimal offline stand-in for `serde_json`, matching the subset the
//! workspace uses: [`to_string`] and [`from_str`]. Output is genuine JSON
//! (escaped strings, round-trippable `{:?}` float formatting), so trace
//! files written through this shim are interchangeable with real tooling.

use serde::{Deserialize, Serialize};
use std::fmt;

// The shim's data model doubles as the dynamic document type, mirroring the
// real crate's `serde_json::Value` (including `get`/`as_*` accessors).
pub use serde::Value;

/// JSON serialization / deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes a value to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize(), &mut out, 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that round-trips,
                // and always includes a `.` or exponent for non-integral text.
                out.push_str(&format!("{n:?}"));
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 0.25)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,0.5],[2,0.25]]");
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&String::from("a\"b\\c\nd")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn pretty_output_round_trips() {
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'), "pretty output should be indented: {s}");
        let back: Vec<(u64, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_maps() {
        let v: Option<Vec<u32>> = from_str("[1, 2,\n 3]").unwrap();
        assert_eq!(v, Some(vec![1, 2, 3]));
        let none: Option<Vec<u32>> = from_str("null").unwrap();
        assert_eq!(none, None);
    }
}
