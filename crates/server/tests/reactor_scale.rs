//! The reactor at scale: connections ≫ event loops.
//!
//! These are the configurations the thread-per-connection front end could
//! not serve at all (PR 4 hit a real deadlock from `workers < clients`):
//!
//! * a soak with 256+ mostly-idle connections multiplexed on 2 event
//!   loops, active traffic interleaved, and a clean shutdown with every
//!   connection still open mid-flight;
//! * write backpressure — a client that requests far more response bytes
//!   than it reads must be throttled by TCP while its event loop keeps
//!   serving its siblings, and must eventually receive every byte intact.

use cache_server::{BackendConfig, BackendMode, CacheClient, CacheServer, ServerConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn start_server(workers: usize, max_connections: usize) -> CacheServer {
    CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        max_connections,
        backend: BackendConfig {
            total_bytes: 32 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            ..BackendConfig::default()
        },
    })
    .expect("server must start")
}

fn stats_map(client: &mut CacheClient) -> HashMap<String, String> {
    client.stats().unwrap().into_iter().collect()
}

/// ≥ 256 concurrent live connections on 2 event loops: idle sessions cost
/// buffers, not threads; traffic keeps flowing around them; shutdown closes
/// every one of them mid-flight without hanging.
#[test]
fn soak_256_idle_connections_on_two_loops() {
    const IDLE: usize = 260;
    let mut server = start_server(2, 1024);
    let addr = server.local_addr();

    // Open the idle fleet. Each connection does one round-trip, so it is
    // fully registered with its event loop (not just sitting in a backlog)
    // before we count it.
    let mut idle: Vec<CacheClient> = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        let mut client = CacheClient::connect(addr).expect("connect idle");
        assert!(client
            .set(format!("idle-{i}").as_bytes(), 0, b"parked")
            .unwrap());
        idle.push(client);
    }

    // Active traffic interleaves with the parked fleet on the same 2 loops.
    let workers: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = CacheClient::connect(addr).expect("connect active");
                for i in 0..300 {
                    let key = format!("active-{t}-{}", i % 16);
                    let value = format!("v-{t}-{i}");
                    assert!(client.set(key.as_bytes(), 0, value.as_bytes()).unwrap());
                    let got = client.get(key.as_bytes()).unwrap().expect("own write");
                    assert_eq!(got.1, value.as_bytes());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("active worker must not panic");
    }

    // The idle fleet is still fully connected and still works.
    let mut probe = CacheClient::connect(addr).unwrap();
    let stats = stats_map(&mut probe);
    let curr: u64 = stats["curr_connections"].parse().unwrap();
    assert!(
        curr > IDLE as u64,
        "all {IDLE} idle connections plus the probe must be live, got {curr}"
    );
    let total: u64 = stats["total_connections"].parse().unwrap();
    assert!(total >= IDLE as u64 + 5, "accept total counts everyone");
    assert_eq!(stats["rejected_connections"], "0");
    // Round-robin spread the fleet across both loops.
    let loop0: u64 = stats["conns:loop:0"].parse().unwrap();
    let loop1: u64 = stats["conns:loop:1"].parse().unwrap();
    assert_eq!(loop0 + loop1, curr);
    assert!(
        loop0 >= 100 && loop1 >= 100,
        "round-robin must spread connections: {loop0} / {loop1}"
    );
    for (i, client) in idle.iter_mut().enumerate().step_by(37) {
        let got = client
            .get(format!("idle-{i}").as_bytes())
            .unwrap()
            .expect("parked connection still serves");
        assert_eq!(got.1, b"parked");
    }

    // Clean shutdown with all 260+ connections open and traffic mid-flight.
    let disconnected = Arc::new(AtomicU64::new(0));
    let in_flight: Vec<_> = (0..3)
        .map(|t| {
            let disconnected = Arc::clone(&disconnected);
            std::thread::spawn(move || {
                let mut client = match CacheClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        disconnected.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0u64.. {
                    let key = format!("flight-{t}-{}", i % 8);
                    if client
                        .set(key.as_bytes(), 0, b"x")
                        .and_then(|_| client.get(key.as_bytes()).map(|_| ()))
                        .is_err()
                    {
                        disconnected.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.shutdown();
    for h in in_flight {
        h.join().expect("mid-flight worker must not panic");
    }
    assert_eq!(disconnected.load(Ordering::Relaxed), 3);
    // Every parked connection was closed by the teardown.
    for (i, client) in idle.iter_mut().enumerate() {
        assert!(
            client.get(format!("idle-{i}").as_bytes()).is_err(),
            "idle connection {i} must observe the shutdown"
        );
    }
}

/// A reader that stalls mid-response parks its connection on write
/// backpressure; the event loop (there is only one) keeps serving a
/// sibling connection the whole time, and the stalled reader eventually
/// receives every response byte-exact.
#[test]
fn write_backpressure_does_not_block_the_loop() {
    const VALUE_BYTES: usize = 200 * 1024;
    const GETS: usize = 120; // ~24 MB of responses, far past every buffer
    let server = start_server(1, 64);
    let addr = server.local_addr();

    let mut setup = CacheClient::connect(addr).unwrap();
    let payload: Vec<u8> = (0..VALUE_BYTES).map(|i| (i % 251) as u8).collect();
    assert!(setup.set(b"big", 0, &payload).unwrap());

    // The stalling reader: pipeline GETS requests, read nothing yet.
    let stalled = TcpStream::connect(addr).unwrap();
    stalled.set_nodelay(true).unwrap();
    let mut stalled_writer = stalled.try_clone().unwrap();
    let request: Vec<u8> = b"get big\r\n".repeat(GETS);
    stalled_writer.write_all(&request).unwrap();
    // Let the server fill the socket buffers and hit the watermark.
    std::thread::sleep(std::time::Duration::from_millis(200));

    // The sibling on the same (only) event loop must be fully responsive
    // while the stalled connection is parked on EPOLLOUT.
    let mut sibling = CacheClient::connect(addr).unwrap();
    for i in 0..100 {
        let key = format!("sib-{i}");
        assert!(sibling.set(key.as_bytes(), 0, b"quick").unwrap());
        assert_eq!(sibling.get(key.as_bytes()).unwrap().unwrap().1, b"quick");
    }

    // Now drain the stalled connection: every one of the GETS responses
    // must arrive, framed exactly, with the payload intact.
    let mut reader = BufReader::with_capacity(64 * 1024, stalled);
    for response in 0..GETS {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "EOF before response {response}"
        );
        assert_eq!(
            line.trim_end(),
            format!("VALUE big 0 {VALUE_BYTES}"),
            "response {response} header"
        );
        let mut data = vec![0u8; VALUE_BYTES + 2];
        reader.read_exact(&mut data).unwrap();
        assert_eq!(&data[VALUE_BYTES..], b"\r\n");
        assert_eq!(&data[..VALUE_BYTES], &payload[..], "payload {response}");
        let mut end = String::new();
        reader.read_line(&mut end).unwrap();
        assert_eq!(end.trim_end(), "END", "response {response} END");
    }
}
