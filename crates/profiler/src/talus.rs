//! Talus partitioning of a single queue (Beckmann & Sanchez, HPCA 2015).
//!
//! Given a queue of `N` items whose hit-rate curve has a performance cliff at
//! the current operating point, Talus splits the queue into two sub-queues
//! and divides the request stream between them so that each sub-queue
//! *simulates* a larger (or smaller) queue sitting on the concave hull. The
//! combined hit rate is the linear interpolation between the two hull anchor
//! points — i.e. the concave hull itself (paper §4.2, Figure 4).
//!
//! The arithmetic: with anchors `a < N < b` on the hull, route a fraction
//! `ρ = (b − N) / (b − a)` of requests to the left sub-queue and give it
//! `ρ·a` items; the remaining `1 − ρ` of requests go to the right sub-queue
//! of `(1 − ρ)·b` items. The paper's example (application 19, slab 0 with
//! `N = 8000`, `a = 2000`, `b = 13500`) yields ρ ≈ 0.48, sizes 957 and 7043 —
//! reproduced in the tests below.

use crate::curve::HitRateCurve;
use crate::hull::ConcaveHull;
use serde::{Deserialize, Serialize};

/// A Talus split of one queue.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TalusPartition {
    /// Items assigned to the left (smaller-simulation) sub-queue.
    pub left_items: u64,
    /// Items assigned to the right (larger-simulation) sub-queue.
    pub right_items: u64,
    /// Fraction of requests routed to the left sub-queue.
    pub left_request_ratio: f64,
    /// Queue size the left sub-queue simulates (hull anchor `a`).
    pub simulated_left: u64,
    /// Queue size the right sub-queue simulates (hull anchor `b`).
    pub simulated_right: u64,
    /// Hit rate the partition is expected to achieve (the hull's value).
    pub expected_hit_rate: f64,
    /// Hit rate of the unpartitioned queue at the same size (for comparison).
    pub baseline_hit_rate: f64,
}

impl TalusPartition {
    /// Computes the Talus partition of a queue of `items` items with the
    /// given hit-rate curve.
    ///
    /// If the operating point is not inside a cliff (the curve already sits
    /// on its hull within `tolerance`), the queue is split evenly and both
    /// halves simulate the original size — which behaves identically to the
    /// unpartitioned queue.
    pub fn compute(curve: &HitRateCurve, items: u64, tolerance: f64) -> TalusPartition {
        let hull = curve.concave_hull();
        Self::compute_with_hull(curve, &hull, items, tolerance)
    }

    /// Same as [`TalusPartition::compute`] with a precomputed hull.
    pub fn compute_with_hull(
        curve: &HitRateCurve,
        hull: &ConcaveHull,
        items: u64,
        tolerance: f64,
    ) -> TalusPartition {
        let baseline = curve.hit_rate_at(items);
        let even = TalusPartition {
            left_items: items / 2,
            right_items: items - items / 2,
            left_request_ratio: 0.5,
            simulated_left: items,
            simulated_right: items,
            expected_hit_rate: baseline,
            baseline_hit_rate: baseline,
        };
        if items == 0 || !hull.in_cliff_region(curve, items, tolerance) {
            return even;
        }
        let Some(((a, _ha), (b, hb_))) = hull.bracketing_segment(items) else {
            return even;
        };
        if b <= a || items <= a || items >= b {
            return even;
        }
        let rho = (b - items) as f64 / (b - a) as f64;
        let left_items = (rho * a as f64).round() as u64;
        let right_items = items.saturating_sub(left_items);
        TalusPartition {
            left_items,
            right_items,
            left_request_ratio: rho,
            simulated_left: a,
            simulated_right: b,
            expected_hit_rate: hull.value_at(items),
            baseline_hit_rate: baseline,
        }
        .sanity_clamped(hb_)
    }

    fn sanity_clamped(mut self, right_anchor_rate: f64) -> Self {
        self.left_request_ratio = self.left_request_ratio.clamp(0.0, 1.0);
        if self.expected_hit_rate < self.baseline_hit_rate {
            self.expected_hit_rate = self.baseline_hit_rate;
        }
        if self.expected_hit_rate > right_anchor_rate.max(self.baseline_hit_rate) {
            self.expected_hit_rate = right_anchor_rate.max(self.baseline_hit_rate);
        }
        self
    }

    /// The hit-rate improvement over the unpartitioned queue.
    pub fn improvement(&self) -> f64 {
        self.expected_hit_rate - self.baseline_hit_rate
    }

    /// Whether the partition actually splits the queue unevenly (i.e. the
    /// operating point was inside a cliff).
    pub fn is_cliff_partition(&self) -> bool {
        self.simulated_left != self.simulated_right
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hit-rate curve of the paper's running example: application 19,
    /// slab class 0 — near zero until a steep cliff, flattening around
    /// 13 500 items (Figure 4).
    fn app19_like_curve() -> HitRateCurve {
        HitRateCurve::from_points(vec![
            (1, 0.001),
            (500, 0.15),
            (2_000, 0.30),
            (6_000, 0.33),
            (9_000, 0.36),
            (10_500, 0.60),
            (12_000, 0.80),
            (13_500, 0.92),
            (18_000, 0.96),
        ])
    }

    #[test]
    fn reproduces_the_papers_figure_4_arithmetic() {
        // The paper's worked example: anchors 2000 and 13500, queue of 8000
        // items => 48%/52% request split, 957 and 7043 items.
        let items = 8_000u64;
        let (a, b) = (2_000u64, 13_500u64);
        let rho = (b - items) as f64 / (b - a) as f64;
        assert!((rho - 0.478).abs() < 0.01);
        let left = (rho * a as f64).round() as u64;
        let right = items - left;
        assert_eq!(left, 957);
        assert_eq!(right, 7_043);
    }

    #[test]
    fn partition_rides_the_hull_inside_a_cliff() {
        let curve = app19_like_curve();
        let p = TalusPartition::compute(&curve, 8_000, 0.02);
        assert!(p.is_cliff_partition());
        assert!(p.simulated_left < 8_000);
        assert!(p.simulated_right > 8_000);
        assert_eq!(p.left_items + p.right_items, 8_000);
        assert!(
            p.improvement() > 0.2,
            "partitioning should lift the hit rate well above the cliff floor \
             (got {:.3} over {:.3})",
            p.expected_hit_rate,
            p.baseline_hit_rate
        );
        // The request split interpolates the anchors: simulated sizes must be
        // consistent with the physical sizes and ratios.
        let sim_left = p.left_items as f64 / p.left_request_ratio;
        let sim_right = p.right_items as f64 / (1.0 - p.left_request_ratio);
        assert!((sim_left - p.simulated_left as f64).abs() / (p.simulated_left as f64) < 0.05);
        assert!((sim_right - p.simulated_right as f64).abs() / (p.simulated_right as f64) < 0.05);
    }

    #[test]
    fn concave_operating_point_splits_evenly() {
        let curve =
            HitRateCurve::from_points(vec![(100, 0.3), (200, 0.5), (400, 0.65), (800, 0.72)]);
        let p = TalusPartition::compute(&curve, 400, 0.01);
        assert!(!p.is_cliff_partition());
        assert_eq!(p.left_request_ratio, 0.5);
        assert_eq!(p.left_items + p.right_items, 400);
        assert!((p.expected_hit_rate - 0.65).abs() < 1e-9);
        assert_eq!(p.improvement(), 0.0);
    }

    #[test]
    fn beyond_the_curve_splits_evenly() {
        let curve = app19_like_curve();
        let p = TalusPartition::compute(&curve, 50_000, 0.02);
        assert!(!p.is_cliff_partition());
        let z = TalusPartition::compute(&curve, 0, 0.02);
        assert_eq!(z.left_items, 0);
        assert_eq!(z.right_items, 0);
    }

    #[test]
    fn expected_rate_never_below_baseline() {
        let curve = app19_like_curve();
        for items in (500..18_000).step_by(375) {
            let p = TalusPartition::compute(&curve, items, 0.02);
            assert!(
                p.expected_hit_rate + 1e-9 >= p.baseline_hit_rate,
                "partition at {items} regressed"
            );
        }
    }
}
