//! Regression pin of the legacy text `stats` surface.
//!
//! The committed benchmark baselines, the CI smoke validators and any
//! operator tooling scripted against `stats` parse these keys *by name*,
//! and several consumers also rely on section ordering (aggregates first,
//! then per-tenant, then per-shard, then the plane section). A renamed or
//! reordered key is therefore a breaking change that must show up as a test
//! diff, not as a silently green build — machine-readable additions go to
//! `stats json`, never into renaming this surface.
//!
//! Both backends are pinned: the embedded [`SharedCache`] (no connection
//! or data-plane sections) and the server's shared-nothing data plane
//! (full surface), over both the plain and the Cliffhanger allocator.

use cache_server::{
    BackendConfig, BackendMode, CacheClient, CacheServer, ServerConfig, SharedCache,
};

/// The aggregate head section, identical for every backend.
fn head_keys() -> Vec<String> {
    [
        "cmd_get",
        "cmd_set",
        "get_hits",
        "get_misses",
        "cmd_delete",
        "bytes",
        "curr_items",
        "evictions",
        "uptime",
        "limit_maxbytes",
        "allocator",
        "shard_count",
        "shards_requested",
        "shard_bytes",
        "tenant_count",
        "rebalance:enabled",
        "rebalance:runs",
        "rebalance:transfers",
        "rebalance:bytes_moved",
        "arbiter:enabled",
        "arbiter:runs",
        "arbiter:transfers",
        "arbiter:bytes_moved",
    ]
    .map(String::from)
    .to_vec()
}

/// One tenant's or shard's per-engine breakdown under `prefix`.
fn engine_keys(prefix: &str) -> Vec<String> {
    [
        "cmd_get",
        "cmd_set",
        "get_hits",
        "get_misses",
        "cmd_delete",
        "bytes",
        "curr_items",
        "evictions",
        "budget",
        "shadow_hits",
    ]
    .map(|k| format!("{prefix}:{k}"))
    .to_vec()
}

/// The full expected key sequence for the embedded backend (no connection
/// or data-plane sections): head, tenants, shards.
fn embedded_keys(shards: usize) -> Vec<String> {
    let mut keys = head_keys();
    keys.extend(engine_keys("tenant:default"));
    for s in 0..shards {
        keys.extend(engine_keys(&format!("shard:{s}")));
    }
    keys
}

/// The full expected key sequence for the server: head, connections,
/// tenants, shards, then the data-plane section.
fn server_keys(shards: usize, loops: usize) -> Vec<String> {
    let mut keys = head_keys();
    keys.extend(
        [
            "curr_connections",
            "total_connections",
            "rejected_connections",
            "max_connections",
        ]
        .map(String::from),
    );
    for i in 0..loops {
        keys.push(format!("conns:loop:{i}"));
    }
    keys.push("idle_closed_connections".into());
    keys.extend(engine_keys("tenant:default"));
    for s in 0..shards {
        keys.extend(engine_keys(&format!("shard:{s}")));
    }
    keys.extend(
        [
            "plane:event_loops",
            "plane:local_ops",
            "plane:remote_ops",
            "plane:admin_msgs",
            "plane:idle_timeout_ms",
            "plane:slow_ops",
        ]
        .map(String::from),
    );
    for i in 0..loops {
        keys.push(format!("loop:{i}:local_ops"));
        keys.push(format!("loop:{i}:remote_in"));
        keys.push(format!("loop:{i}:remote_out"));
    }
    for s in 0..shards {
        keys.push(format!("shard:{s}:owner_loop"));
    }
    keys
}

fn assert_keys(label: &str, stats: &[(String, String)], expected: &[String]) {
    let actual: Vec<&String> = stats.iter().map(|(k, _)| k).collect();
    let expected: Vec<&String> = expected.iter().collect();
    assert_eq!(
        actual, expected,
        "{label}: the legacy `stats` key set/order is a compatibility \
         surface; additions belong in `stats json`"
    );
}

#[test]
fn embedded_backend_stats_keys_are_pinned() {
    for mode in [BackendMode::Default, BackendMode::Cliffhanger] {
        let cache = SharedCache::new(BackendConfig {
            total_bytes: 8 << 20,
            mode,
            shards: 2,
            ..BackendConfig::default()
        });
        cache.set(b"k", 0, bytes::Bytes::from_static(b"v"));
        assert_keys(
            &format!("embedded/{mode:?}"),
            &cache.stats(),
            &embedded_keys(2),
        );
    }
}

#[test]
fn server_stats_keys_are_pinned() {
    for mode in [BackendMode::Default, BackendMode::Cliffhanger] {
        let server = CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            backend: BackendConfig {
                total_bytes: 8 << 20,
                mode,
                shards: 2,
                ..BackendConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("server must start");
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        client.set(b"k", 0, b"v").unwrap();
        assert_keys(
            &format!("server/{mode:?}"),
            &client.stats().unwrap(),
            &server_keys(2, 2),
        );
    }
}
