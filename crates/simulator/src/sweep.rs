//! Memory sweeps.
//!
//! Figure 7 reports how much memory Cliffhanger needs to match the *default*
//! scheme's hit rate — on average 55% (equivalently, 45% savings). This
//! module finds that quantity by bisection over the memory reservation.

use crate::engine::{replay_app, CacheSystem, ReplayOptions};
use workloads::Trace;

/// The outcome of a memory-matching sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryMatch {
    /// The hit rate the candidate system had to match.
    pub target_hit_rate: f64,
    /// Fraction of the original reservation the candidate needed (1.0 means
    /// no savings; values above 1.0 mean the candidate could not match the
    /// target even with the full reservation).
    pub fraction_needed: f64,
    /// The hit rate the candidate achieved at that fraction.
    pub achieved_hit_rate: f64,
}

impl MemoryMatch {
    /// Memory savings relative to the original reservation (the paper's
    /// "memory saved"); clamped at 0 when no savings exist.
    pub fn savings(&self) -> f64 {
        (1.0 - self.fraction_needed).max(0.0)
    }
}

/// Replays `candidate` at decreasing memory fractions (by bisection) until
/// the smallest fraction that still matches `target_hit_rate` (within
/// `tolerance`) is found.
///
/// `iterations` bounds the bisection depth (each iteration replays the whole
/// trace once). The returned fraction is conservative: it is the smallest
/// *tested* fraction whose hit rate was at least `target_hit_rate - tolerance`.
pub fn memory_to_match(
    trace: &Trace,
    candidate: &CacheSystem,
    options: &ReplayOptions,
    target_hit_rate: f64,
    iterations: usize,
    tolerance: f64,
) -> MemoryMatch {
    let full = options.reserved_bytes;
    let run_at = |fraction: f64| -> f64 {
        let mut opts = options.clone();
        opts.reserved_bytes = ((full as f64 * fraction).round() as u64).max(1);
        replay_app(trace, candidate, &opts).hit_rate()
    };

    // If the candidate cannot match the target even with full memory, report
    // fraction 1.0 with what it achieved (negative savings are clamped).
    let full_rate = run_at(1.0);
    if full_rate + tolerance < target_hit_rate {
        return MemoryMatch {
            target_hit_rate,
            fraction_needed: 1.0,
            achieved_hit_rate: full_rate,
        };
    }

    let mut lo = 0.05f64; // never go below 5% of the reservation
    let mut hi = 1.0f64;
    let mut best_fraction = 1.0;
    let mut best_rate = full_rate;
    for _ in 0..iterations.max(1) {
        let mid = (lo + hi) / 2.0;
        let rate = run_at(mid);
        if rate + tolerance >= target_hit_rate {
            best_fraction = mid;
            best_rate = rate;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    MemoryMatch {
        target_hit_rate,
        fraction_needed: best_fraction,
        achieved_hit_rate: best_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CacheSystem;
    use workloads::{AppProfile, Phase, SizeDistribution};

    fn zipf_trace() -> Trace {
        let profile = AppProfile::simple(
            1,
            "sweep-test",
            1.0,
            4 << 20,
            Phase::zipf(5_000, 1.1, SizeDistribution::Fixed(100)),
        )
        .with_get_fraction(1.0);
        Trace::from_requests(profile.generate(40_000, 3_600, 5))
    }

    #[test]
    fn skewed_workloads_need_less_memory_than_reserved() {
        let trace = zipf_trace();
        let options = ReplayOptions::new(4 << 20);
        // Target: the default system's own hit rate at a *quarter* of the
        // reservation; the full reservation should match it with plenty of
        // room, i.e. need well under 100%.
        let quarter = replay_app(
            &trace,
            &CacheSystem::default_lru(),
            &ReplayOptions::new(1 << 20),
        )
        .hit_rate();
        let result = memory_to_match(
            &trace,
            &CacheSystem::default_lru(),
            &options,
            quarter,
            5,
            0.002,
        );
        assert!(
            result.fraction_needed < 0.6,
            "fraction = {}",
            result.fraction_needed
        );
        assert!(result.achieved_hit_rate + 0.002 >= quarter);
        assert!(result.savings() > 0.4);
    }

    #[test]
    fn impossible_targets_report_no_savings() {
        let trace = zipf_trace();
        let options = ReplayOptions::new(64 << 10);
        let result = memory_to_match(
            &trace,
            &CacheSystem::default_lru(),
            &options,
            0.999,
            4,
            0.001,
        );
        assert_eq!(result.fraction_needed, 1.0);
        assert_eq!(result.savings(), 0.0);
        assert!(result.achieved_hit_rate < 0.999);
    }
}
