//! Hit/miss/eviction accounting.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counters collected by every queue, cache and tenant in the crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of GET requests observed.
    pub gets: u64,
    /// Number of GETs that were served from the physical queue.
    pub hits: u64,
    /// Number of GETs that missed the physical queue.
    pub misses: u64,
    /// Number of SET requests observed.
    pub sets: u64,
    /// Number of items evicted from physical queues.
    pub evictions: u64,
    /// Number of GET misses that hit a hill-climbing shadow queue.
    pub shadow_hits: u64,
    /// Number of GET misses that hit a cliff-scaling shadow queue.
    pub cliff_shadow_hits: u64,
}

impl CacheStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Records a GET and whether it hit.
    pub fn record_get(&mut self, hit: bool) {
        self.gets += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Records a SET.
    pub fn record_set(&mut self) {
        self.sets += 1;
    }

    /// Records `n` evictions.
    pub fn record_evictions(&mut self, n: u64) {
        self.evictions += n;
    }

    /// Hit ratio over all GETs observed so far.
    pub fn hit_ratio(&self) -> HitRatio {
        HitRatio::new(self.hits, self.gets)
    }

    /// Miss ratio over all GETs observed so far.
    pub fn miss_ratio(&self) -> f64 {
        1.0 - self.hit_ratio().value()
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            gets: self.gets + rhs.gets,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            sets: self.sets + rhs.sets,
            evictions: self.evictions + rhs.evictions,
            shadow_hits: self.shadow_hits + rhs.shadow_hits,
            cliff_shadow_hits: self.cliff_shadow_hits + rhs.cliff_shadow_hits,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

/// A hit ratio: hits over requests, `0.0` when no requests were observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HitRatio {
    hits: u64,
    total: u64,
}

impl HitRatio {
    /// Builds a ratio from raw counts.
    pub fn new(hits: u64, total: u64) -> Self {
        debug_assert!(hits <= total, "hits cannot exceed total");
        HitRatio { hits, total }
    }

    /// The ratio as a fraction in `[0, 1]`.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// The ratio as a percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        self.value() * 100.0
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of requests.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of misses.
    pub fn misses(&self) -> u64 {
        self.total - self.hits
    }
}

/// Relative reduction in misses when going from `baseline` to `improved`,
/// as a fraction of the baseline's misses (the paper's "miss reduction").
///
/// Returns `0.0` when the baseline had no misses. A negative value means the
/// improved configuration had *more* misses.
pub fn miss_reduction(baseline: HitRatio, improved: HitRatio) -> f64 {
    let base_misses = baseline.misses() as f64;
    if base_misses == 0.0 {
        return 0.0;
    }
    // Normalise to miss *rates* so the two sides may have observed different
    // request counts (e.g. different warm-up handling).
    let base_rate = base_misses / baseline.total().max(1) as f64;
    let improved_rate = improved.misses() as f64 / improved.total().max(1) as f64;
    (base_rate - improved_rate) / base_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_ratio() {
        let mut s = CacheStats::new();
        for i in 0..10 {
            s.record_get(i < 7);
        }
        s.record_set();
        assert_eq!(s.gets, 10);
        assert_eq!(s.hits, 7);
        assert_eq!(s.misses, 3);
        assert_eq!(s.sets, 1);
        assert!((s.hit_ratio().value() - 0.7).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(HitRatio::default().value(), 0.0);
        assert_eq!(CacheStats::new().hit_ratio().value(), 0.0);
    }

    #[test]
    fn stats_add() {
        let mut a = CacheStats::new();
        a.record_get(true);
        a.record_evictions(2);
        let mut b = CacheStats::new();
        b.record_get(false);
        b.record_set();
        let c = a + b;
        assert_eq!(c.gets, 2);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.sets, 1);
        assert_eq!(c.evictions, 2);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn miss_reduction_matches_paper_convention() {
        // Baseline: 80% hit rate => 20 misses per 100. Improved: 90% => 10.
        let base = HitRatio::new(80, 100);
        let better = HitRatio::new(90, 100);
        assert!((miss_reduction(base, better) - 0.5).abs() < 1e-12);
        // Worse allocation yields a negative reduction.
        let worse = HitRatio::new(60, 100);
        assert!(miss_reduction(base, worse) < 0.0);
        // No baseline misses: nothing to reduce.
        assert_eq!(miss_reduction(HitRatio::new(5, 5), better), 0.0);
    }

    #[test]
    fn percent_and_counts() {
        let r = HitRatio::new(977, 1000);
        assert!((r.percent() - 97.7).abs() < 1e-9);
        assert_eq!(r.misses(), 23);
        assert_eq!(r.hits(), 977);
        assert_eq!(r.total(), 1000);
    }
}
