//! Hit-rate-curve figures: Figure 1 (a concave curve), Figure 3 (a cliff)
//! and Figure 4 (the concave hull and Talus partition of application 19's
//! dominant slab class).

use crate::experiments::ExperimentContext;
use crate::profiles::profile_app_classes;
use crate::report::{FigureSeries, Table};
use cache_core::{CacheQueue, ClassId};
use profiler::TalusPartition;

/// The slab class of an application that receives the most GETs.
pub fn dominant_class(ctx: &ExperimentContext, app_number: u32) -> ClassId {
    let profiles = profile_app_classes(ctx.trace(app_number), &ctx.options(app_number).slab, 256);
    profiles
        .gets_per_class
        .iter()
        .enumerate()
        .max_by_key(|(_, &g)| g)
        .map(|(i, _)| ClassId::new(i as u32))
        .unwrap_or(ClassId::new(0))
}

/// The measured hit-rate curve of one application's slab class
/// (Figure 1 uses application 3, Figure 3 uses application 11).
pub fn hit_rate_curve_figure(
    ctx: &ExperimentContext,
    app_number: u32,
    class: Option<ClassId>,
    title: &str,
) -> FigureSeries {
    let options = ctx.options(app_number);
    let profiles = profile_app_classes(ctx.trace(app_number), &options.slab, 512);
    let class = class.unwrap_or_else(|| dominant_class(ctx, app_number));
    let curve = &profiles.profiles[class.index()].curve;
    let mut figure = FigureSeries::new(title, "items in LRU queue", &["hit rate"]);
    for &(items, rate) in curve.points() {
        figure.push(items as f64, vec![rate]);
    }
    figure
}

/// Figure 4: the hit-rate curve of application 19's dominant class, its
/// concave hull, and the Talus partition at the class's default allocation.
/// Returns the figure (curve and hull series) and a table with the partition
/// parameters (the paper's 957 / 7043-item example).
pub fn talus_partition_figure(ctx: &ExperimentContext, app_number: u32) -> (FigureSeries, Table) {
    let options = ctx.options(app_number);
    let profiles = profile_app_classes(ctx.trace(app_number), &options.slab, 512);
    let class = dominant_class(ctx, app_number);
    let profile = &profiles.profiles[class.index()];
    let curve = &profile.curve;
    let hull = curve.concave_hull();

    let mut figure = FigureSeries::new(
        &format!("Figure 4: application {app_number}, {class} — curve and concave hull"),
        "items in LRU queue",
        &["hit rate", "concave hull"],
    );
    for &(items, rate) in curve.points() {
        figure.push(items as f64, vec![rate, hull.value_at(items)]);
    }

    // Operating point: the class's share of the default allocation, i.e.
    // what first-come-first-serve gives it; approximated as the class's GET
    // share of the reservation, converted to items.
    let charge = CacheQueue::<()>::charge(options.slab.chunk_size(class));
    let share = profile.frequency.max(0.01);
    let operating_items =
        (((options.reserved_bytes as f64) * share) / charge as f64).round() as u64;
    let operating_items = operating_items.clamp(1, curve.max_items().max(2) - 1);
    let partition = TalusPartition::compute(curve, operating_items, 0.02);

    let mut table = Table::new(
        &format!("Figure 4 (parameters): Talus partition of application {app_number}, {class}"),
        &[
            "queue items",
            "left anchor",
            "right anchor",
            "left ratio",
            "left items",
            "right items",
            "baseline hit rate",
            "partitioned hit rate",
        ],
    );
    table.push_row(vec![
        operating_items.to_string(),
        partition.simulated_left.to_string(),
        partition.simulated_right.to_string(),
        Table::ratio(partition.left_request_ratio),
        partition.left_items.to_string(),
        partition.right_items.to_string(),
        Table::pct(partition.baseline_hit_rate),
        Table::pct(partition.expected_hit_rate),
    ]);
    (figure, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::shared_quick_context;

    #[test]
    fn figure1_curve_is_concave_ish_and_monotone() {
        let ctx = shared_quick_context();
        let fig = hit_rate_curve_figure(ctx, 3, None, "Figure 1: application 3");
        assert!(fig.points.len() > 10);
        assert!(fig
            .points
            .windows(2)
            .all(|w| w[0].1[0] <= w[1].1[0] + 1e-12));
        let max = fig.points.last().unwrap().1[0];
        assert!(max > 0.5, "app 3 should be cacheable, max hit rate {max}");
    }

    #[test]
    fn figure3_curve_has_a_cliff() {
        let ctx = shared_quick_context();
        let options = ctx.options(11);
        let profiles = profile_app_classes(ctx.trace(11), &options.slab, 512);
        let class = dominant_class(ctx, 11);
        let curve = &profiles.profiles[class.index()].curve;
        assert!(
            curve.has_cliff(0.08),
            "application 11's dominant class should exhibit a performance cliff"
        );
        let fig = hit_rate_curve_figure(ctx, 11, Some(class), "Figure 3: application 11");
        assert!(fig.points.len() > 10);
    }

    #[test]
    fn figure4_partition_improves_on_the_cliff() {
        let ctx = shared_quick_context();
        let (fig, table) = talus_partition_figure(ctx, 19);
        assert_eq!(fig.series_labels.len(), 2);
        // The hull never falls below the curve.
        for (_, ys) in &fig.points {
            assert!(ys[1] + 1e-9 >= ys[0]);
        }
        assert_eq!(table.rows.len(), 1);
    }
}
