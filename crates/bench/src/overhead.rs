//! Tables 6 and 7: latency and throughput overhead of the algorithms.

use bytes::Bytes;
use cache_server::{BackendConfig, BackendMode, SharedCache};
use simulator::report::Table;
use std::time::Instant;
use workloads::SizeDistribution;

/// Knobs for the overhead measurements.
#[derive(Clone, Debug)]
pub struct OverheadOptions {
    /// Cache size in bytes (small enough that the worst-case workload keeps
    /// it full and evicting).
    pub cache_bytes: u64,
    /// Number of operations measured per scenario.
    pub operations: u64,
    /// Number of warm-up operations before measuring (fills the cache and
    /// the shadow queues, as in §5.6).
    pub warmup_operations: u64,
}

impl Default for OverheadOptions {
    fn default() -> Self {
        OverheadOptions {
            cache_bytes: 16 << 20,
            operations: 200_000,
            warmup_operations: 100_000,
        }
    }
}

impl OverheadOptions {
    /// A configuration small enough for unit tests.
    pub fn quick() -> Self {
        OverheadOptions {
            cache_bytes: 2 << 20,
            operations: 20_000,
            warmup_operations: 10_000,
        }
    }
}

fn backend(mode: BackendMode, bytes: u64) -> SharedCache {
    SharedCache::new(BackendConfig {
        total_bytes: bytes,
        mode,
        ..BackendConfig::default()
    })
}

fn value_for(i: u64) -> Bytes {
    // ETC-like value sizes, deterministic per index.
    let size = SizeDistribution::facebook_etc().size_for_key(i, 0x0b5e55ed) as usize;
    Bytes::from(vec![0x5au8; size.clamp(1, 64 << 10)])
}

fn unique_key(space: &str, i: u64) -> Vec<u8> {
    format!("{space}:{i:020}").into_bytes()
}

/// Fills the cache (and its shadow queues) with unique keys so that it is
/// full and every subsequent miss exercises eviction and shadow bookkeeping.
fn warm_up(cache: &SharedCache, operations: u64) {
    for i in 0..operations {
        let key = unique_key("warm", i);
        cache.set(&key, 0, value_for(i));
    }
}

/// Measures the average nanoseconds per operation of `op` over `n` calls.
fn measure<F: FnMut(u64)>(n: u64, mut op: F) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        op(i);
    }
    start.elapsed().as_nanos() as f64 / n.max(1) as f64
}

struct LatencyNumbers {
    get_hit_ns: f64,
    get_miss_ns: f64,
    set_miss_ns: f64,
}

fn latency_numbers(mode: BackendMode, options: &OverheadOptions) -> LatencyNumbers {
    let cache = backend(mode, options.cache_bytes);
    warm_up(&cache, options.warmup_operations);

    // GET hits: a small resident working set touched repeatedly.
    let resident: Vec<Vec<u8>> = (0..1_000u64)
        .map(|i| {
            let key = unique_key("hot", i);
            cache.set(&key, 0, Bytes::from_static(b"hot-value"));
            key
        })
        .collect();
    let get_hit_ns = measure(options.operations, |i| {
        let key = &resident[(i % resident.len() as u64) as usize];
        std::hint::black_box(cache.get(key));
    });

    // GET misses on unique keys (worst case: every miss probes the shadow
    // queues of its class).
    let mut counter = 0u64;
    let get_miss_ns = measure(options.operations, |_| {
        counter += 1;
        let key = unique_key("miss", counter);
        std::hint::black_box(cache.get(&key));
    });

    // SETs of unique keys with the cache full: every store evicts and pushes
    // keys through the shadow queues.
    let mut set_counter = 0u64;
    let set_miss_ns = measure(options.operations, |_| {
        set_counter += 1;
        let key = unique_key("fill", set_counter);
        std::hint::black_box(cache.set(&key, 0, value_for(set_counter)));
    });

    LatencyNumbers {
        get_hit_ns,
        get_miss_ns,
        set_miss_ns,
    }
}

fn pct_overhead(baseline: f64, value: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (value - baseline) / baseline * 100.0)
}

/// Table 6: average latency overhead of hill climbing and Cliffhanger over
/// the stock cache, for GETs and SETs, on hits and on the all-miss worst
/// case.
pub fn table6_latency_overhead(options: &OverheadOptions) -> Table {
    let stock = latency_numbers(BackendMode::Default, options);
    let hill = latency_numbers(BackendMode::HillClimbing, options);
    let full = latency_numbers(BackendMode::Cliffhanger, options);

    let mut table = Table::new(
        "Table 6: average latency overhead vs the stock cache (worst-case all-miss workload)",
        &[
            "algorithm",
            "operation",
            "cache hit",
            "cache miss",
            "stock ns (hit/miss)",
        ],
    );
    for (name, numbers) in [("hill climbing", &hill), ("Cliffhanger", &full)] {
        table.push_row(vec![
            name.to_string(),
            "GET".to_string(),
            pct_overhead(stock.get_hit_ns, numbers.get_hit_ns),
            pct_overhead(stock.get_miss_ns, numbers.get_miss_ns),
            format!("{:.0} / {:.0}", stock.get_hit_ns, stock.get_miss_ns),
        ]);
        table.push_row(vec![
            name.to_string(),
            "SET".to_string(),
            "-".to_string(),
            pct_overhead(stock.set_miss_ns, numbers.set_miss_ns),
            format!("- / {:.0}", stock.set_miss_ns),
        ]);
    }
    table
}

fn throughput_ops_per_sec(mode: BackendMode, get_fraction: f64, options: &OverheadOptions) -> f64 {
    let cache = backend(mode, options.cache_bytes);
    warm_up(&cache, options.warmup_operations);
    let mut counter = 0u64;
    let start = Instant::now();
    for i in 0..options.operations {
        // Deterministic GET/SET interleaving at the requested ratio; all
        // keys are unique so the cache stays full and every GET misses.
        let is_get = (i as f64 * get_fraction).fract() + get_fraction >= 1.0;
        counter += 1;
        let key = unique_key("tp", counter);
        if is_get {
            std::hint::black_box(cache.get(&key));
        } else {
            std::hint::black_box(cache.set(&key, 0, value_for(counter)));
        }
    }
    options.operations as f64 / start.elapsed().as_secs_f64()
}

/// Table 7: throughput slowdown of Cliffhanger vs the stock cache when the
/// cache is full and CPU-bound, for the paper's three GET/SET mixes.
pub fn table7_throughput_overhead(options: &OverheadOptions) -> Table {
    let mut table = Table::new(
        "Table 7: throughput slowdown vs the stock cache (cache full, all keys unique)",
        &[
            "% GETs",
            "% SETs",
            "stock ops/s",
            "hill climbing slowdown",
            "Cliffhanger slowdown",
        ],
    );
    for (gets, sets) in workloads::EtcConfig::table7_mixes() {
        let stock = throughput_ops_per_sec(BackendMode::Default, gets, options);
        let hill = throughput_ops_per_sec(BackendMode::HillClimbing, gets, options);
        let full = throughput_ops_per_sec(BackendMode::Cliffhanger, gets, options);
        let slowdown = |candidate: f64| {
            if candidate <= 0.0 {
                "n/a".to_string()
            } else {
                format!("{:+.1}%", (stock / candidate - 1.0) * 100.0)
            }
        };
        table.push_row(vec![
            format!("{:.1}%", gets * 100.0),
            format!("{:.1}%", sets * 100.0),
            format!("{stock:.0}"),
            slowdown(hill),
            slowdown(full),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_produces_four_rows() {
        let table = table6_latency_overhead(&OverheadOptions::quick());
        assert_eq!(table.rows.len(), 4);
        assert!(table.to_string().contains("GET"));
    }

    #[test]
    fn table7_produces_three_mixes() {
        let table = table7_throughput_overhead(&OverheadOptions::quick());
        assert_eq!(table.rows.len(), 3);
        assert!(table.rows[0][0].starts_with("96.7"));
        // Stock throughput is a positive number.
        let stock: f64 = table.rows[0][2].parse().unwrap();
        assert!(stock > 0.0);
    }
}
