//! CI performance gate over shard-sweep reports.
//!
//! Run with:
//! `cargo run --release -p bench --bin perf_gate -- <baseline.json> <current.json> [--threshold 0.20]`
//!
//! Both inputs may be raw `cliffhanger-loadgen-sweep/v1` documents or
//! committed `BENCH_PR<N>.json` wrappers holding one under `"shard_sweep"`.
//! Exits non-zero when throughput drops, or p99 latency rises, by more than
//! the threshold at any shard count present in both reports. Reports that
//! embed the server's scraped telemetry document (`report.server_stats`,
//! PR 7+) are also gated on the server-side service-time p99s when both
//! sides carry them.
//!
//! The gate also understands scenario reports (PR 8+): when both inputs
//! are `cliffhanger-scenario/v1` or `cliffhanger-scenario-matrix/v1`
//! documents, phases are matched by `scenario/phase` label and gated on
//! per-phase throughput and p99 with the same one-sided threshold.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.20f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                threshold = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(t) => t,
                    None => {
                        eprintln!("--threshold needs a fraction (e.g. 0.20)");
                        return ExitCode::FAILURE;
                    }
                };
                i += 1;
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: perf_gate <baseline.json> <current.json> [--threshold 0.20]");
        return ExitCode::FAILURE;
    }

    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    // Dispatch on the documents themselves: two scenario documents run
    // the scenario gate, anything else the classic sweep gate.
    let result = read(&paths[0])
        .and_then(|base| Ok((base, read(&paths[1])?)))
        .and_then(|(base, cur)| {
            if bench::is_scenario_document(&base) && bench::is_scenario_document(&cur) {
                bench::compare_scenario_matrices(&base, &cur, threshold)
                    .map(|r| (r.lines(), r.passed()))
            } else {
                bench::compare_sweeps(&base, &cur, threshold).map(|r| (r.lines(), r.passed()))
            }
        });
    match result {
        Ok((lines, passed)) => {
            eprintln!(
                "perf gate: {} vs {} (threshold {:.0}%)",
                paths[0],
                paths[1],
                threshold * 100.0
            );
            for line in lines {
                eprintln!("  {line}");
            }
            if passed {
                eprintln!("perf gate: ok");
                ExitCode::SUCCESS
            } else {
                eprintln!("perf gate: REGRESSION");
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("perf_gate: {err}");
            ExitCode::FAILURE
        }
    }
}
