//! Hot-key detection and per-loop replication.
//!
//! Under the shared-nothing plane every key is owned by exactly one event
//! loop, so a single viral key pins one core at 100% while its siblings
//! idle, and every GET from a non-owning loop pays a mailbox round-trip.
//! This module turns that worst case into embarrassingly parallel reads:
//!
//! 1. **Detection** — each loop runs a sampled sliding-window
//!    [`HotKeyTracker`] (a pelikan-`hotkey`-style counter table over a key
//!    sample, zero shared state). The control thread merges the per-loop
//!    tables at snapshot, exactly like the service-time telemetry.
//! 2. **Mitigation** — the control thread promotes the global top-k into a
//!    shared promoted set (hysteretic promote/demote thresholds, published
//!    with the same generation protocol as the tenant table). Non-owning
//!    loops serve promoted GETs from a local read-through replica cache;
//!    the first miss rides the normal forward with a fill request, and the
//!    owner answers with the value *and its version*.
//! 3. **Consistency** — correctness never depends on the promoted set
//!    being fresh. A fixed table of atomic version slots ([`VersionTable`])
//!    is bumped by the owning loop on *every* SET/DELETE before the write
//!    is acknowledged; a replica entry serves only while its captured
//!    version still equals the live slot. A write therefore invalidates
//!    every replica of the key (plus, harmlessly, any key aliasing the same
//!    slot) no later than the moment its ack is observable, so a GET issued
//!    after an acknowledged write can never see the overwritten value.
//!    The mailbox invalidation broadcast on writes to promoted keys is an
//!    *eager memory reclaim* on top, not a correctness mechanism.
//!
//! The whole subsystem is feature-gated: with [`HotKeyConfig::enabled`]
//! off (the default), the routing fast path pays a single `Option`
//! check and no memory.

use bytes::Bytes;
use cache_core::Key;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of version slots. Power of two; collisions only cause spurious
/// revalidation (a replica entry invalidated by an aliasing key's write),
/// never staleness, so a modest table is plenty for a top-k hot set.
const VERSION_SLOTS: usize = 2048;

/// Hot-key detection and mitigation configuration.
#[derive(Clone, Debug)]
pub struct HotKeyConfig {
    /// Master switch. Off (the default) reproduces the plain shared-nothing
    /// plane: no tracker, no version bumps, no replica cache.
    pub enabled: bool,
    /// Sampling denominator: one in `sample` GETs enters the tracker
    /// window (1 tracks everything).
    pub sample: u64,
    /// Sliding-window length in *sampled* entries; a key's count is its
    /// number of occurrences among the last `window` samples.
    pub window: usize,
    /// A key is promoted when its merged windowed count reaches this.
    pub promote_threshold: u64,
    /// A promoted key is demoted when its merged count falls below this.
    /// Keep it well under `promote_threshold` — the gap is the hysteresis
    /// that stops a key on the boundary from flapping.
    pub demote_threshold: u64,
    /// Maximum number of concurrently promoted keys (global top-k).
    pub max_promoted: usize,
    /// Per-loop replica cache budget in bytes (keys + values). Values that
    /// do not fit are simply not replicated; under cap pressure the
    /// coldest replica (oldest last hit) is evicted first, so a marginal
    /// promoted key can never displace the hottest key's replica.
    pub replica_bytes: usize,
    /// Data ops between control-thread promotion rounds (divided across
    /// the loops like the balancer intervals).
    pub interval_requests: u64,
}

impl Default for HotKeyConfig {
    fn default() -> Self {
        HotKeyConfig {
            enabled: false,
            sample: 8,
            window: 4096,
            promote_threshold: 32,
            demote_threshold: 8,
            max_promoted: 8,
            replica_bytes: 1 << 20,
            interval_requests: 1 << 16,
        }
    }
}

impl HotKeyConfig {
    /// An aggressive profile for tests and smoke runs: sample everything,
    /// promote fast, round often.
    pub fn aggressive() -> Self {
        HotKeyConfig {
            enabled: true,
            sample: 1,
            window: 4096,
            promote_threshold: 16,
            demote_threshold: 4,
            max_promoted: 8,
            replica_bytes: 1 << 20,
            interval_requests: 2048,
        }
    }
}

/// The shared fixed-size table of per-key version counters. Writers are
/// owning loops only (each key has exactly one owner, so each slot's bumps
/// are totally ordered by construction plus the atomic); readers are every
/// loop's replica path.
pub(crate) struct VersionTable {
    slots: Vec<AtomicU64>,
}

impl VersionTable {
    pub(crate) fn new() -> VersionTable {
        VersionTable {
            slots: (0..VERSION_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn index(tenant: usize, id: Key) -> usize {
        // Mix the tenant in so the same key bytes under two tenants do not
        // share fate more than any other alias pair.
        let mixed = id.0 ^ (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed as usize) & (VERSION_SLOTS - 1)
    }

    /// The live version of `(tenant, id)`'s slot.
    pub(crate) fn load(&self, tenant: usize, id: Key) -> u64 {
        self.slots[Self::index(tenant, id)].load(Ordering::Acquire)
    }

    /// Bumps `(tenant, id)`'s slot. Called by the owning loop on every
    /// mutation of the key *before* the ack is enqueued.
    pub(crate) fn bump(&self, tenant: usize, id: Key) {
        self.slots[Self::index(tenant, id)].fetch_add(1, Ordering::AcqRel);
    }

    /// Bumps every slot. Called by the control thread when a bulk
    /// mutation (tenant `flush_all`) drops keys it cannot enumerate —
    /// replica entries for other tenants only pay one spurious
    /// revalidation, never a wrong answer.
    pub(crate) fn bump_all(&self) {
        for slot in &self.slots {
            slot.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// One currently promoted key, as the control thread's master set holds it.
#[derive(Clone)]
pub(crate) struct PromotedEntry {
    pub(crate) key: Bytes,
    /// The merged windowed count at the last round, for stats.
    pub(crate) count: u64,
}

/// One sampled hot-key tally a loop reports at snapshot.
#[derive(Clone)]
pub(crate) struct HotKeyCount {
    pub(crate) tenant: usize,
    pub(crate) id: Key,
    pub(crate) key: Bytes,
    pub(crate) count: u64,
}

/// The per-loop sampled sliding-window tracker: a counter table over the
/// last `window` sampled GETs. Owned by one loop thread, zero shared state.
pub(crate) struct HotKeyTracker {
    sample: u64,
    window: usize,
    seen: u64,
    ring: VecDeque<(usize, Key)>,
    counts: HashMap<(usize, Key), (u64, Bytes)>,
}

impl HotKeyTracker {
    pub(crate) fn new(config: &HotKeyConfig) -> HotKeyTracker {
        HotKeyTracker {
            sample: config.sample.max(1),
            window: config.window.max(1),
            seen: 0,
            ring: VecDeque::with_capacity(config.window.max(1)),
            counts: HashMap::new(),
        }
    }

    /// Offers one GET to the sampler; one in `sample` enters the window.
    pub(crate) fn record(&mut self, tenant: usize, id: Key, key: &[u8]) {
        self.seen += 1;
        if self.seen % self.sample != 0 {
            return;
        }
        if self.ring.len() == self.window {
            if let Some(old) = self.ring.pop_front() {
                if let Some(slot) = self.counts.get_mut(&old) {
                    slot.0 -= 1;
                    if slot.0 == 0 {
                        self.counts.remove(&old);
                    }
                }
            }
        }
        self.ring.push_back((tenant, id));
        self.counts
            .entry((tenant, id))
            .and_modify(|slot| slot.0 += 1)
            .or_insert_with(|| (1, Bytes::copy_from_slice(key)));
    }

    /// The current windowed tallies, for the snapshot merge.
    pub(crate) fn snapshot(&self) -> Vec<HotKeyCount> {
        self.counts
            .iter()
            .map(|(&(tenant, id), (count, key))| HotKeyCount {
                tenant,
                id,
                key: key.clone(),
                count: *count,
            })
            .collect()
    }
}

/// One promotion-round decision: which keys enter the promoted set and
/// which leave it.
pub(crate) struct RoundPlan {
    pub(crate) promote: Vec<((usize, Key), Bytes, u64)>,
    pub(crate) demote: Vec<(usize, Key)>,
    /// Fresh per-key counts for entries that stay promoted.
    pub(crate) refreshed: Vec<((usize, Key), u64)>,
}

/// The pure promote/demote decision over the merged counts — hysteretic
/// (promote at `promote_threshold`, demote below `demote_threshold`) and
/// capped at `max_promoted` by evicting the coldest entries first.
pub(crate) fn plan_round(
    merged: &HashMap<(usize, Key), (u64, Bytes)>,
    promoted: &HashMap<(usize, Key), PromotedEntry>,
    config: &HotKeyConfig,
) -> RoundPlan {
    let mut plan = RoundPlan {
        promote: Vec::new(),
        demote: Vec::new(),
        refreshed: Vec::new(),
    };
    // Existing entries: demote below the low-water mark, refresh the rest.
    let mut survivors: Vec<((usize, Key), u64)> = Vec::new();
    for (&slot, _) in promoted.iter() {
        let count = merged.get(&slot).map(|(c, _)| *c).unwrap_or(0);
        if count < config.demote_threshold {
            plan.demote.push(slot);
        } else {
            survivors.push((slot, count));
        }
    }
    // Candidates: above the high-water mark and not already promoted.
    let mut candidates: Vec<((usize, Key), u64, Bytes)> = merged
        .iter()
        .filter(|(slot, (count, _))| {
            *count >= config.promote_threshold && !promoted.contains_key(slot)
        })
        .map(|(&slot, (count, key))| (slot, *count, key.clone()))
        .collect();
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0).1 .0.cmp(&(b.0).1 .0)));
    // Enforce the top-k cap: candidates may displace colder survivors, but
    // only when strictly hotter — a tie never churns the set.
    survivors.sort_by_key(|a| a.1);
    for (slot, count, key) in candidates {
        if survivors.len() + plan.promote.len() < config.max_promoted {
            plan.promote.push((slot, key, count));
        } else if let Some(&(coldest, coldest_count)) = survivors.first() {
            if count > coldest_count {
                survivors.remove(0);
                plan.demote.push(coldest);
                plan.promote.push((slot, key, count));
            }
        }
    }
    plan.refreshed = survivors;
    plan
}

/// One replica-cache entry on a non-owning loop: the exact key bytes (a
/// hash collision must forward, never serve), the value, and the version
/// the owner captured when it filled us.
struct ReplicaEntry {
    key: Bytes,
    flags: u32,
    data: Bytes,
    version: u64,
    /// Loop-local logical clock value at the last hit (or the fill), so
    /// cap-pressure eviction can pick the coldest entry instead of an
    /// arbitrary one.
    last_hit: u64,
}

impl ReplicaEntry {
    fn cost(&self) -> usize {
        self.key.len() + self.data.len() + std::mem::size_of::<ReplicaEntry>()
    }
}

/// The per-loop half of the subsystem: the tracker, this loop's copy of
/// the promoted set, and the replica cache. Owned by one loop thread.
pub(crate) struct HotLoopState {
    pub(crate) tracker: HotKeyTracker,
    /// Loop-local copy of the promoted set, refreshed on generation moves.
    view: HashSet<(usize, Key)>,
    generation_seen: u64,
    replica: HashMap<(usize, Key), ReplicaEntry>,
    replica_used: usize,
    replica_cap: usize,
    /// Logical clock for `ReplicaEntry::last_hit`, advanced on every hit
    /// and fill.
    tick: u64,
    /// GETs served from the replica cache (never crossed a loop).
    pub(crate) replica_hits: u64,
    /// Fills accepted from owning loops.
    pub(crate) replica_fills: u64,
    /// Invalidation broadcasts received.
    pub(crate) invalidations: u64,
}

impl HotLoopState {
    pub(crate) fn new(config: &HotKeyConfig) -> HotLoopState {
        HotLoopState {
            tracker: HotKeyTracker::new(config),
            view: HashSet::new(),
            generation_seen: 0,
            replica: HashMap::new(),
            replica_used: 0,
            replica_cap: config.replica_bytes,
            tick: 0,
            replica_hits: 0,
            replica_fills: 0,
            invalidations: 0,
        }
    }

    /// Whether `(tenant, id)` is promoted in this loop's view.
    pub(crate) fn is_promoted(&self, tenant: usize, id: Key) -> bool {
        self.view.contains(&(tenant, id))
    }

    /// Serves a GET from the replica cache if the entry is present, the key
    /// bytes match exactly, and the captured version still equals the live
    /// slot. A version mismatch evicts the entry and misses (the caller
    /// forwards with a fill request — read-through revalidation).
    pub(crate) fn replica_get(
        &mut self,
        tenant: usize,
        id: Key,
        key: &[u8],
        versions: &VersionTable,
    ) -> Option<(u32, Bytes)> {
        if !self.view.contains(&(tenant, id)) {
            return None;
        }
        let live = versions.load(tenant, id);
        match self.replica.get_mut(&(tenant, id)) {
            None => return None,
            Some(entry) => {
                if entry.key != key {
                    return None;
                }
                if entry.version == live {
                    self.tick += 1;
                    entry.last_hit = self.tick;
                    self.replica_hits += 1;
                    return Some((entry.flags, entry.data.clone()));
                }
            }
        }
        self.evict(tenant, id);
        None
    }

    /// Accepts a fill from the owning loop. Ignored if the key has since
    /// left this loop's view or the value cannot fit the byte cap.
    pub(crate) fn fill(
        &mut self,
        tenant: usize,
        id: Key,
        key: Bytes,
        flags: u32,
        data: Bytes,
        version: u64,
    ) {
        if !self.view.contains(&(tenant, id)) {
            return;
        }
        self.tick += 1;
        let entry = ReplicaEntry {
            key,
            flags,
            data,
            version,
            last_hit: self.tick,
        };
        let cost = entry.cost();
        if cost > self.replica_cap {
            return;
        }
        self.evict(tenant, id);
        // Cap pressure evicts the coldest entry (oldest last hit), so a
        // fill for a marginal promoted key can never displace the hottest
        // key's replica. The map only ever holds a handful of promoted
        // keys, so a linear scan per eviction is plenty.
        while self.replica_used + cost > self.replica_cap {
            let Some((&victim, _)) = self.replica.iter().min_by_key(|(_, e)| e.last_hit) else {
                break;
            };
            self.evict(victim.0, victim.1);
        }
        self.replica_used += cost;
        self.replica.insert((tenant, id), entry);
        self.replica_fills += 1;
    }

    /// Drops one replica entry (invalidation broadcast, or a stale read).
    pub(crate) fn invalidate(&mut self, tenant: usize, id: Key) {
        self.invalidations += 1;
        self.evict(tenant, id);
    }

    /// Drops every replica entry of one tenant (tenant `flush_all`).
    /// Eager memory reclaim: correctness is carried by the control
    /// thread's `bump_all` on the version table, which lands before the
    /// flush is acknowledged.
    pub(crate) fn purge_tenant(&mut self, tenant: usize) {
        let gone: Vec<(usize, Key)> = self
            .replica
            .keys()
            .filter(|slot| slot.0 == tenant)
            .copied()
            .collect();
        for (tenant, id) in gone {
            self.invalidate(tenant, id);
        }
    }

    fn evict(&mut self, tenant: usize, id: Key) {
        if let Some(old) = self.replica.remove(&(tenant, id)) {
            self.replica_used -= old.cost();
        }
    }

    /// Re-copies the promoted set if the control thread changed it, pruning
    /// replica entries for demoted keys. One atomic load on the no-change
    /// path, mirroring the tenant-table refresh.
    pub(crate) fn refresh(
        &mut self,
        generation: u64,
        master: &parking_lot::Mutex<HashMap<(usize, Key), PromotedEntry>>,
    ) {
        if generation == self.generation_seen {
            return;
        }
        self.view = master.lock().keys().copied().collect();
        self.generation_seen = generation;
        let gone: Vec<(usize, Key)> = self
            .replica
            .keys()
            .filter(|slot| !self.view.contains(slot))
            .copied()
            .collect();
        for (tenant, id) in gone {
            self.evict(tenant, id);
        }
    }
}

/// The plane-shared half: configuration, the version table, and the master
/// promoted set behind the generation counter. Lives in `PlaneShared` as an
/// `Option` — `None` when the feature is off.
pub(crate) struct HotShared {
    pub(crate) config: HotKeyConfig,
    pub(crate) versions: VersionTable,
    /// The master promoted set. The control thread is the only writer;
    /// loops copy it out when `generation` moves.
    pub(crate) promoted: parking_lot::Mutex<HashMap<(usize, Key), PromotedEntry>>,
    /// Bumped by the control thread after every promoted-set change.
    pub(crate) generation: AtomicU64,
    /// Collapses concurrent round triggers into one queued round.
    pub(crate) round_pending: std::sync::atomic::AtomicBool,
}

impl HotShared {
    pub(crate) fn new(config: HotKeyConfig) -> HotShared {
        HotShared {
            config,
            versions: VersionTable::new(),
            promoted: parking_lot::Mutex::new(HashMap::new()),
            generation: AtomicU64::new(1),
            round_pending: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(tenant: usize, raw: u64) -> (usize, Key) {
        (tenant, Key::new(raw))
    }

    fn merged_with(entries: &[((usize, u64), u64)]) -> HashMap<(usize, Key), (u64, Bytes)> {
        entries
            .iter()
            .map(|&((tenant, raw), count)| {
                (
                    slot(tenant, raw),
                    (count, Bytes::from(format!("k{raw}").into_bytes())),
                )
            })
            .collect()
    }

    fn promoted_with(entries: &[((usize, u64), u64)]) -> HashMap<(usize, Key), PromotedEntry> {
        entries
            .iter()
            .map(|&((tenant, raw), count)| {
                (
                    slot(tenant, raw),
                    PromotedEntry {
                        key: Bytes::from(format!("k{raw}").into_bytes()),
                        count,
                    },
                )
            })
            .collect()
    }

    fn test_config() -> HotKeyConfig {
        HotKeyConfig {
            enabled: true,
            sample: 1,
            window: 8,
            promote_threshold: 10,
            demote_threshold: 4,
            max_promoted: 2,
            ..HotKeyConfig::default()
        }
    }

    #[test]
    fn tracker_window_slides_and_counts_decay() {
        let config = HotKeyConfig {
            sample: 1,
            window: 4,
            ..HotKeyConfig::default()
        };
        let mut tracker = HotKeyTracker::new(&config);
        for _ in 0..4 {
            tracker.record(0, Key::new(1), b"hot");
        }
        let snap = tracker.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].count, 4);
        assert_eq!(&snap[0].key[..], b"hot");
        // Four different keys push the hot key entirely out of the window.
        for raw in 10..14 {
            tracker.record(0, Key::new(raw), b"cold");
        }
        let snap = tracker.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.iter().all(|e| e.count == 1));
        assert!(!snap.iter().any(|e| e.id == Key::new(1)));
    }

    #[test]
    fn tracker_samples_one_in_n() {
        let config = HotKeyConfig {
            sample: 4,
            window: 1024,
            ..HotKeyConfig::default()
        };
        let mut tracker = HotKeyTracker::new(&config);
        for _ in 0..100 {
            tracker.record(0, Key::new(7), b"sampled");
        }
        assert_eq!(tracker.snapshot()[0].count, 25);
    }

    #[test]
    fn hysteresis_promotes_high_and_demotes_low() {
        let config = test_config();
        // A key between the thresholds is neither promoted fresh...
        let merged = merged_with(&[((0, 1), 7)]);
        let plan = plan_round(&merged, &HashMap::new(), &config);
        assert!(plan.promote.is_empty());
        // ...nor demoted once in.
        let promoted = promoted_with(&[((0, 1), 12)]);
        let plan = plan_round(&merged, &promoted, &config);
        assert!(plan.demote.is_empty());
        assert_eq!(plan.refreshed, vec![(slot(0, 1), 7)]);
        // Below the low-water mark it leaves; at the high-water mark a new
        // key enters.
        let merged = merged_with(&[((0, 1), 3), ((0, 2), 10)]);
        let plan = plan_round(&merged, &promoted, &config);
        assert_eq!(plan.demote, vec![slot(0, 1)]);
        assert_eq!(plan.promote.len(), 1);
        assert_eq!(plan.promote[0].0, slot(0, 2));
    }

    #[test]
    fn top_k_cap_evicts_only_strictly_colder_survivors() {
        let config = test_config(); // max_promoted = 2
        let promoted = promoted_with(&[((0, 1), 20), ((0, 2), 20)]);
        // A hotter candidate displaces the colder survivor...
        let merged = merged_with(&[((0, 1), 5), ((0, 2), 20), ((0, 3), 30)]);
        let plan = plan_round(&merged, &promoted, &config);
        assert_eq!(plan.demote, vec![slot(0, 1)]);
        assert_eq!(plan.promote[0].0, slot(0, 3));
        // ...but an equally-hot one does not churn the set.
        let merged = merged_with(&[((0, 1), 20), ((0, 2), 20), ((0, 3), 20)]);
        let plan = plan_round(&merged, &promoted, &config);
        assert!(plan.promote.is_empty());
        assert!(plan.demote.is_empty());
    }

    #[test]
    fn missing_keys_demote_under_churn() {
        // A promoted key that vanished from every tracker window (traffic
        // churned away) counts as 0 and is demoted.
        let config = test_config();
        let promoted = promoted_with(&[((0, 1), 50)]);
        let plan = plan_round(&HashMap::new(), &promoted, &config);
        assert_eq!(plan.demote, vec![slot(0, 1)]);
    }

    #[test]
    fn version_mismatch_invalidates_replica() {
        let config = test_config();
        let versions = VersionTable::new();
        let shared_promoted = parking_lot::Mutex::new(promoted_with(&[((0, 9), 50)]));
        let mut state = HotLoopState::new(&config);
        state.refresh(2, &shared_promoted);
        let v = versions.load(0, Key::new(9));
        state.fill(
            0,
            Key::new(9),
            Bytes::from_static(b"k9"),
            7,
            Bytes::from_static(b"v1"),
            v,
        );
        assert_eq!(
            state.replica_get(0, Key::new(9), b"k9", &versions),
            Some((7, Bytes::from_static(b"v1")))
        );
        assert_eq!(state.replica_hits, 1);
        // A write bumps the version: the stale entry must stop serving.
        versions.bump(0, Key::new(9));
        assert_eq!(state.replica_get(0, Key::new(9), b"k9", &versions), None);
        // And it was evicted, not just skipped.
        assert_eq!(state.replica_used, 0);
    }

    #[test]
    fn replica_requires_exact_key_match_and_view_membership() {
        let config = test_config();
        let versions = VersionTable::new();
        let shared_promoted = parking_lot::Mutex::new(promoted_with(&[((0, 9), 50)]));
        let mut state = HotLoopState::new(&config);
        state.refresh(2, &shared_promoted);
        state.fill(
            0,
            Key::new(9),
            Bytes::from_static(b"k9"),
            0,
            Bytes::from_static(b"v"),
            0,
        );
        // A colliding 64-bit id with different bytes must forward.
        assert_eq!(state.replica_get(0, Key::new(9), b"other", &versions), None);
        // Demotion prunes the entry and stops serving.
        shared_promoted.lock().clear();
        state.refresh(3, &shared_promoted);
        assert_eq!(state.replica_get(0, Key::new(9), b"k9", &versions), None);
        assert_eq!(state.replica_used, 0);
    }

    #[test]
    fn bump_all_stops_every_replica_from_serving() {
        // `flush_all` cannot enumerate the flushed tenant's keys, so it
        // bumps every slot; a replica captured pre-flush must stop serving.
        let config = test_config();
        let versions = VersionTable::new();
        let shared_promoted = parking_lot::Mutex::new(promoted_with(&[((0, 9), 50)]));
        let mut state = HotLoopState::new(&config);
        state.refresh(2, &shared_promoted);
        state.fill(
            0,
            Key::new(9),
            Bytes::from_static(b"k9"),
            0,
            Bytes::from_static(b"pre-flush"),
            versions.load(0, Key::new(9)),
        );
        assert!(state
            .replica_get(0, Key::new(9), b"k9", &versions)
            .is_some());
        versions.bump_all();
        assert_eq!(state.replica_get(0, Key::new(9), b"k9", &versions), None);
        assert_eq!(state.replica_used, 0, "the stale entry must be evicted");
    }

    #[test]
    fn purge_tenant_drops_only_that_tenants_replicas() {
        let config = test_config();
        let versions = VersionTable::new();
        let shared_promoted = parking_lot::Mutex::new(promoted_with(&[((0, 1), 50), ((1, 2), 50)]));
        let mut state = HotLoopState::new(&config);
        state.refresh(2, &shared_promoted);
        state.fill(
            0,
            Key::new(1),
            Bytes::from_static(b"k1"),
            0,
            Bytes::from_static(b"a"),
            0,
        );
        state.fill(
            1,
            Key::new(2),
            Bytes::from_static(b"k2"),
            0,
            Bytes::from_static(b"b"),
            0,
        );
        state.purge_tenant(0);
        assert_eq!(state.replica_get(0, Key::new(1), b"k1", &versions), None);
        assert_eq!(
            state.replica_get(1, Key::new(2), b"k2", &versions),
            Some((0, Bytes::from_static(b"b")))
        );
    }

    #[test]
    fn cap_pressure_evicts_the_coldest_replica_first() {
        // Three promoted keys, a cap that fits two: the fill that forces
        // an eviction must displace the entry that has not been hit, not
        // the one still serving traffic.
        let config = HotKeyConfig {
            replica_bytes: 2 * (2 + 8 + std::mem::size_of::<ReplicaEntry>()),
            max_promoted: 3,
            ..test_config()
        };
        let versions = VersionTable::new();
        let shared_promoted =
            parking_lot::Mutex::new(promoted_with(&[((0, 1), 50), ((0, 2), 50), ((0, 3), 50)]));
        let mut state = HotLoopState::new(&config);
        state.refresh(2, &shared_promoted);
        let value = Bytes::from(vec![0u8; 8]);
        state.fill(
            0,
            Key::new(1),
            Bytes::from_static(b"k1"),
            0,
            value.clone(),
            0,
        );
        state.fill(
            0,
            Key::new(2),
            Bytes::from_static(b"k2"),
            0,
            value.clone(),
            0,
        );
        // k1 is the hot one; k2 goes cold.
        assert!(state
            .replica_get(0, Key::new(1), b"k1", &versions)
            .is_some());
        state.fill(0, Key::new(3), Bytes::from_static(b"k3"), 0, value, 0);
        assert!(
            state
                .replica_get(0, Key::new(1), b"k1", &versions)
                .is_some(),
            "the recently hit replica must survive cap pressure"
        );
        assert_eq!(state.replica_get(0, Key::new(2), b"k2", &versions), None);
        assert!(state
            .replica_get(0, Key::new(3), b"k3", &versions)
            .is_some());
    }

    #[test]
    fn replica_cap_bounds_memory() {
        let config = HotKeyConfig {
            replica_bytes: 256,
            ..test_config()
        };
        let versions = VersionTable::new();
        let shared_promoted = parking_lot::Mutex::new(promoted_with(&[((0, 1), 50), ((0, 2), 50)]));
        let mut state = HotLoopState::new(&config);
        state.refresh(2, &shared_promoted);
        // An oversize value is refused outright.
        state.fill(
            0,
            Key::new(1),
            Bytes::from_static(b"k1"),
            0,
            Bytes::from(vec![0u8; 512]),
            0,
        );
        assert_eq!(state.replica_used, 0);
        // Two entries that do not fit together: the second evicts the first.
        state.fill(
            0,
            Key::new(1),
            Bytes::from_static(b"k1"),
            0,
            Bytes::from(vec![0u8; 100]),
            0,
        );
        state.fill(
            0,
            Key::new(2),
            Bytes::from_static(b"k2"),
            0,
            Bytes::from(vec![0u8; 100]),
            0,
        );
        assert!(state.replica_used <= 256);
        assert_eq!(state.replica.len(), 1);
        assert_eq!(
            state.replica_get(0, Key::new(2), b"k2", &versions),
            Some((0, Bytes::from(vec![0u8; 100])))
        );
    }
}
