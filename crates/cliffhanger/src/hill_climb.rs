//! Algorithm 1: shadow-queue hill climbing.
//!
//! ```text
//! if request ∈ shadowQueue(i) then
//!     queue(i).size = queue(i).size + credit
//!     chosenQueue  = pickRandom({queues} - {queue(i)})
//!     chosenQueue.size = chosenQueue.size - credit
//! end if
//! ```
//!
//! The frequency of hits in queue *i*'s shadow queue is proportional to
//! `f_i · h_i'(m_i)` — the marginal utility of giving queue *i* more memory —
//! so repeatedly transferring a small, fixed credit from a uniformly random
//! queue to the one whose shadow queue was hit equalises the (frequency-
//! weighted) gradients across queues, which is the optimality condition of
//! the allocation problem (paper §4.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The credit-accounting half of Cliffhanger: byte targets for a fixed set
/// of queues that always sum to the initial total.
///
/// Credits and floors are *per queue*: a queue whose items are giant (a
/// 16–64 KB slab class) wins at least one chunk's worth of bytes per shadow
/// hit — with the global 1–4 KB credit it would need dozens of wins before a
/// single item fits again, so random-loser picks drained it far faster than
/// hill climbing could refill it (the slow-convergence failure mode of the
/// sharded experiments). Likewise a per-queue floor of one chunk keeps a
/// grown class able to hold at least one resident item, the same reason
/// Memcached's slab rebalancer moves whole pages.
#[derive(Debug, Clone)]
pub struct HillClimber {
    targets: Vec<u64>,
    /// Per-queue credit: how many bytes queue `i` wins per shadow hit (and a
    /// donor gives up when `i` wins).
    credits: Vec<u64>,
    /// Per-queue floor below which queue `i` never donates.
    floors: Vec<u64>,
    rng: StdRng,
    /// Number of credit transfers performed (diagnostics).
    transfers: u64,
}

/// The outcome of one shadow hit: which queue gained and which lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Queue index that received the credit.
    pub winner: usize,
    /// Queue index the credit was taken from.
    pub loser: usize,
    /// Bytes moved.
    pub bytes: u64,
}

impl HillClimber {
    /// Creates a climber with the given initial byte targets.
    ///
    /// `min_bytes` is the floor below which no queue is shrunk — the paper
    /// keeps every queue functional so its shadow queue can still signal
    /// that it wants memory back.
    pub fn new(initial_targets: Vec<u64>, credit_bytes: u64, min_bytes: u64, seed: u64) -> Self {
        assert!(credit_bytes > 0, "credit must be positive");
        let n = initial_targets.len();
        HillClimber {
            targets: initial_targets,
            credits: vec![credit_bytes; n],
            floors: vec![min_bytes; n],
            rng: StdRng::seed_from_u64(seed),
            transfers: 0,
        }
    }

    /// Splits `total_bytes` evenly across `queues` queues and builds a
    /// climber over that initial allocation.
    pub fn even_split(
        queues: usize,
        total_bytes: u64,
        credit_bytes: u64,
        min_bytes: u64,
        seed: u64,
    ) -> Self {
        assert!(queues > 0, "at least one queue is required");
        let share = total_bytes / queues as u64;
        let mut targets = vec![share; queues];
        // Hand any rounding remainder to the first queue so the sum is exact.
        targets[0] += total_bytes - share * queues as u64;
        Self::new(targets, credit_bytes, min_bytes, seed)
    }

    /// Handles a hit in queue `winner`'s shadow queue: moves one credit from
    /// a uniformly random other queue to `winner`. Returns the transfer, or
    /// `None` if no other queue can give up a credit without falling below
    /// the floor (in which case nothing changes, conserving the total).
    pub fn on_shadow_hit(&mut self, winner: usize) -> Option<Transfer> {
        let n = self.targets.len();
        if n < 2 || winner >= n {
            return None;
        }
        // The amount moved is the *winner's* credit: a queue of giant items
        // must win at least one chunk per hit or it can never re-admit.
        let credit = self.credits[winner];
        // Pick a uniformly random queue other than the winner, as in the
        // paper; if it cannot afford the credit, fall back to any queue that
        // can (still unbiased among affordable queues).
        let candidate = {
            let r = self.rng.gen_range(0..n - 1);
            if r >= winner {
                r + 1
            } else {
                r
            }
        };
        let affordable = |t: u64, credit: u64, min: u64| t >= credit && t - credit >= min;
        let loser = if affordable(self.targets[candidate], credit, self.floors[candidate]) {
            candidate
        } else {
            let options: Vec<usize> = (0..n)
                .filter(|&i| i != winner)
                .filter(|&i| affordable(self.targets[i], credit, self.floors[i]))
                .collect();
            if options.is_empty() {
                return None;
            }
            options[self.rng.gen_range(0..options.len())]
        };
        self.targets[winner] += credit;
        self.targets[loser] -= credit;
        self.transfers += 1;
        Some(Transfer {
            winner,
            loser,
            bytes: credit,
        })
    }

    /// Current byte targets.
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// Target of one queue.
    pub fn target(&self, idx: usize) -> u64 {
        self.targets[idx]
    }

    /// Sum of all targets (invariant: never changes).
    pub fn total(&self) -> u64 {
        self.targets.iter().sum()
    }

    /// Number of queues managed.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the climber manages no queues.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of credit transfers performed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Overrides the target of one queue (used when composing with an outer
    /// allocator, e.g. cross-application reassignment).
    pub fn set_target(&mut self, idx: usize, bytes: u64) {
        self.targets[idx] = bytes;
    }

    /// The credit queue `idx` wins per shadow hit.
    pub fn queue_credit(&self, idx: usize) -> u64 {
        self.credits[idx]
    }

    /// Overrides one queue's per-hit credit (e.g. one chunk for giant slab
    /// classes). Must be positive.
    pub fn set_queue_credit(&mut self, idx: usize, bytes: u64) {
        assert!(bytes > 0, "credit must be positive");
        self.credits[idx] = bytes;
    }

    /// The floor below which queue `idx` never donates.
    pub fn queue_floor(&self, idx: usize) -> u64 {
        self.floors[idx]
    }

    /// Overrides one queue's donation floor.
    pub fn set_queue_floor(&mut self, idx: usize, bytes: u64) {
        self.floors[idx] = bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_move_from_random_loser_to_winner() {
        let mut hc = HillClimber::new(vec![1_000, 1_000, 1_000], 100, 0, 42);
        let t = hc.on_shadow_hit(0).expect("transfer must happen");
        assert_eq!(t.winner, 0);
        assert_ne!(t.loser, 0);
        assert_eq!(hc.target(0), 1_100);
        assert_eq!(hc.total(), 3_000);
        assert_eq!(hc.transfers(), 1);
    }

    #[test]
    fn total_memory_is_conserved() {
        let mut hc = HillClimber::even_split(8, 1 << 20, 4 << 10, 0, 7);
        let total = hc.total();
        assert_eq!(total, 1 << 20);
        for i in 0..10_000 {
            hc.on_shadow_hit(i % 8);
        }
        assert_eq!(hc.total(), total);
    }

    #[test]
    fn floor_is_respected() {
        let mut hc = HillClimber::new(vec![500, 500], 100, 400, 3);
        // Queue 1 can only give up one credit before hitting the floor.
        assert!(hc.on_shadow_hit(0).is_some());
        assert_eq!(hc.target(1), 400);
        assert!(
            hc.on_shadow_hit(0).is_none(),
            "no queue can afford a credit"
        );
        assert_eq!(hc.target(0), 600);
        assert_eq!(hc.total(), 1_000);
    }

    #[test]
    fn persistent_demand_shifts_memory_towards_the_hot_queue() {
        // Queue 0's shadow queue is hit 9 times as often as queue 1's; in
        // equilibrium queue 0 should hold most of the memory.
        let mut hc = HillClimber::even_split(2, 1 << 20, 4 << 10, 64 << 10, 11);
        for round in 0..5_000 {
            hc.on_shadow_hit(0);
            if round % 10 == 0 {
                hc.on_shadow_hit(1);
            }
        }
        assert!(
            hc.target(0) > 3 * hc.target(1),
            "hot queue should dominate: {:?}",
            hc.targets()
        );
        assert_eq!(hc.total(), 1 << 20);
        assert!(hc.target(1) >= 64 << 10, "floor must hold");
    }

    #[test]
    fn equal_demand_keeps_allocation_roughly_even() {
        // Under equal demand the allocation performs a zero-drift random
        // walk, so we only require that no queue collapses or takes over.
        let mut hc = HillClimber::even_split(4, 4 << 20, 4 << 10, 0, 5);
        for i in 0..40_000u64 {
            hc.on_shadow_hit((i % 4) as usize);
        }
        let mean = (4 << 20) as f64 / 4.0;
        for &t in hc.targets() {
            assert!(
                (t as f64) > 0.3 * mean && (t as f64) < 2.0 * mean,
                "allocation drifted too far from even: {:?}",
                hc.targets()
            );
        }
        assert_eq!(hc.total(), 4 << 20);
    }

    #[test]
    fn single_queue_and_out_of_range_are_noops() {
        let mut hc = HillClimber::new(vec![1_000], 100, 0, 1);
        assert!(hc.on_shadow_hit(0).is_none());
        let mut hc = HillClimber::new(vec![1_000, 1_000], 100, 0, 1);
        assert!(hc.on_shadow_hit(5).is_none());
        assert_eq!(hc.total(), 2_000);
    }

    #[test]
    fn even_split_accounts_for_rounding() {
        let hc = HillClimber::even_split(3, 1_000_001, 100, 0, 1);
        assert_eq!(hc.total(), 1_000_001);
        assert_eq!(hc.len(), 3);
    }

    #[test]
    #[should_panic(expected = "credit must be positive")]
    fn zero_credit_rejected() {
        let _ = HillClimber::new(vec![100], 0, 0, 1);
    }

    #[test]
    fn per_queue_credit_moves_a_full_chunk_per_win() {
        // Queue 1 models a giant slab class: its credit is one 64 KB chunk
        // while everyone else moves 1 KB at a time.
        let mut hc = HillClimber::new(vec![512 << 10, 16 << 10, 512 << 10], 1 << 10, 0, 9);
        hc.set_queue_credit(1, 64 << 10);
        assert_eq!(hc.queue_credit(1), 64 << 10);
        let t = hc.on_shadow_hit(1).expect("donors can afford a chunk");
        assert_eq!(t.winner, 1);
        assert_eq!(t.bytes, 64 << 10, "one win must move one full chunk");
        assert_eq!(hc.target(1), (16 << 10) + (64 << 10));
        assert_eq!(hc.total(), (512 << 10) + (16 << 10) + (512 << 10));
        // Other queues still move their own (small) credit.
        let t = hc.on_shadow_hit(0).unwrap();
        assert_eq!(t.bytes, 1 << 10);
    }

    #[test]
    fn per_queue_floor_pins_the_protected_queue() {
        let mut hc = HillClimber::new(vec![100 << 10, 64 << 10], 4 << 10, 0, 3);
        // Queue 1 holds exactly one 64 KB chunk; its floor protects it.
        hc.set_queue_floor(1, 64 << 10);
        assert_eq!(hc.queue_floor(1), 64 << 10);
        for _ in 0..100 {
            hc.on_shadow_hit(0);
        }
        assert_eq!(
            hc.target(1),
            64 << 10,
            "the floored queue must never donate below one chunk"
        );
        assert_eq!(hc.total(), (100 << 10) + (64 << 10));
    }

    #[test]
    fn no_transfer_when_no_donor_affords_the_chunk_credit() {
        let mut hc = HillClimber::new(vec![8 << 10, 4 << 10, 8 << 10], 1 << 10, 0, 5);
        hc.set_queue_credit(1, 64 << 10);
        assert!(
            hc.on_shadow_hit(1).is_none(),
            "nobody can donate a 64 KB chunk; totals must be conserved"
        );
        assert_eq!(hc.total(), 20 << 10);
    }
}
