//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match real proptest's default: `None` with probability 1/4.
        if rng.next_below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Generates `Some` values from `inner` (3/4 of the time) or `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
