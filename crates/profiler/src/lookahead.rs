//! The LookAhead allocator (Qureshi & Patt, MICRO 2006).
//!
//! Utility-based cache partitioning's LookAhead algorithm handles non-convex
//! utility curves by considering, for every queue, the *best average* marginal
//! utility over all possible look-ahead amounts — so a queue whose benefit
//! only materialises after a large allocation (a cliff) still competes
//! fairly. The paper cites it as the other curve-based way (besides Talus) of
//! coping with performance cliffs (§6.2).

use crate::dynacache::{Allocation, QueueProfile};

/// Block-granular LookAhead allocation over measured hit-rate curves.
#[derive(Clone, Debug)]
pub struct LookAheadAllocator {
    /// Allocation block size in bytes.
    pub block_bytes: u64,
}

impl Default for LookAheadAllocator {
    fn default() -> Self {
        LookAheadAllocator {
            block_bytes: 1 << 20,
        }
    }
}

impl LookAheadAllocator {
    /// Creates an allocator with the given block size.
    pub fn new(block_bytes: u64) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        LookAheadAllocator { block_bytes }
    }

    /// Allocates `total_bytes` across the queues.
    pub fn allocate(&self, profiles: &[QueueProfile], total_bytes: u64) -> Allocation {
        let n = profiles.len();
        if n == 0 {
            return Allocation {
                bytes: Vec::new(),
                predicted_hit_rate: 0.0,
            };
        }
        let total_blocks = (total_bytes / self.block_bytes) as usize;
        let mut blocks = vec![0usize; n];
        let mut remaining = total_blocks;

        let value = |i: usize, blk: usize| -> f64 {
            let items = blk as u64 * self.block_bytes / profiles[i].bytes_per_item;
            profiles[i].weight * profiles[i].frequency * profiles[i].curve.hit_rate_at(items)
        };

        while remaining > 0 {
            // For each queue find the look-ahead k that maximises the average
            // marginal utility per block.
            let mut best: Option<(usize, usize, f64)> = None; // (queue, k, avg gain)
            for i in 0..n {
                let here = value(i, blocks[i]);
                let mut best_k = 0usize;
                let mut best_avg = 0.0f64;
                for k in 1..=remaining {
                    let gain = value(i, blocks[i] + k) - here;
                    let avg = gain / k as f64;
                    if avg > best_avg {
                        best_avg = avg;
                        best_k = k;
                    }
                }
                if best_k > 0 {
                    match best {
                        Some((_, _, g)) if g >= best_avg => {}
                        _ => best = Some((i, best_k, best_avg)),
                    }
                }
            }
            match best {
                Some((i, k, _)) => {
                    blocks[i] += k;
                    remaining -= k;
                }
                None => {
                    // No queue benefits: spread the rest round-robin.
                    let mut i = 0;
                    while remaining > 0 {
                        blocks[i % n] += 1;
                        remaining -= 1;
                        i += 1;
                    }
                }
            }
        }

        let bytes: Vec<u64> = {
            let mut b: Vec<u64> = blocks
                .iter()
                .map(|&blk| blk as u64 * self.block_bytes)
                .collect();
            // Hand any sub-block remainder to the first queue so the full
            // budget is accounted for.
            let assigned: u64 = b.iter().sum();
            if let Some(first) = b.first_mut() {
                *first += total_bytes - assigned;
            }
            b
        };
        let total_freq: f64 = profiles.iter().map(|p| p.frequency).sum();
        let predicted = if total_freq > 0.0 {
            profiles
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let items = bytes[i] / p.bytes_per_item;
                    p.frequency * p.curve.hit_rate_at(items)
                })
                .sum::<f64>()
                / total_freq
        } else {
            0.0
        };
        Allocation {
            bytes,
            predicted_hit_rate: predicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{cliff_curve, HitRateCurve};

    fn concave(scale: f64, knee: f64) -> HitRateCurve {
        let points = (1..=200u64)
            .map(|i| {
                let x = i * 100;
                (x, scale * x as f64 / (x as f64 + knee))
            })
            .collect();
        HitRateCurve::from_points(points)
    }

    #[test]
    fn lookahead_crosses_cliffs_that_greedy_misses() {
        // Same scenario as the Dynacache solver test: LookAhead must push the
        // cliff queue over its cliff because it evaluates the whole jump.
        let profiles = vec![
            QueueProfile::new(concave(0.5, 1_000.0), 0.5, 100),
            QueueProfile::new(cliff_curve(10_000, 0.9), 0.5, 100),
        ];
        let alloc = LookAheadAllocator::new(16 << 10).allocate(&profiles, 1_400_000);
        assert!(
            alloc.bytes_for(1) >= 10_000 * 100,
            "LookAhead should allocate past the cliff, got {} bytes",
            alloc.bytes_for(1)
        );
        assert_eq!(alloc.total_bytes(), 1_400_000);
    }

    #[test]
    fn concave_inputs_behave_like_water_filling() {
        let profiles = vec![
            QueueProfile::new(concave(0.9, 5_000.0), 0.9, 100),
            QueueProfile::new(concave(0.9, 5_000.0), 0.1, 100),
        ];
        let alloc = LookAheadAllocator::new(64 << 10).allocate(&profiles, 2 << 20);
        assert!(alloc.bytes_for(0) > alloc.bytes_for(1));
    }

    #[test]
    fn empty_inputs() {
        let alloc = LookAheadAllocator::default().allocate(&[], 1 << 20);
        assert!(alloc.bytes.is_empty());
        let profiles = vec![QueueProfile::new(concave(0.5, 100.0), 1.0, 64)];
        let alloc = LookAheadAllocator::new(1 << 10).allocate(&profiles, 0);
        assert_eq!(alloc.total_bytes(), 0);
    }

    #[test]
    fn flat_curves_spread_budget() {
        let flat = HitRateCurve::from_points(vec![(1, 0.4), (10, 0.4)]);
        let profiles = vec![
            QueueProfile::new(flat.clone(), 0.5, 100),
            QueueProfile::new(flat, 0.5, 100),
        ];
        let alloc = LookAheadAllocator::new(1 << 10).allocate(&profiles, 64 << 10);
        assert_eq!(alloc.total_bytes(), 64 << 10);
        assert!(alloc.bytes_for(0) > 0 && alloc.bytes_for(1) > 0);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        let _ = LookAheadAllocator::new(0);
    }
}
