//! The per-connection state machine the reactor drives.
//!
//! Each connection owns a non-blocking socket, a read buffer, a resumable
//! [`Parser`] and a pending-output buffer. The reactor calls
//! [`Connection::on_ready`] with the epoll readiness it observed; the
//! connection reads whatever the socket has, executes every complete
//! command, and writes as much of the accumulated response bytes as the
//! socket accepts. Nothing here ever blocks:
//!
//! * a *read* that would block simply ends the fill pass — the loop's
//!   level-triggered `EPOLLIN` re-arms it;
//! * a *write* that would block parks the unsent bytes and switches the
//!   connection onto `EPOLLOUT` (write backpressure) — and once more than
//!   [`OUT_HIGH_WATERMARK`] bytes are parked, the connection also stops
//!   reading and parsing, so a client that requests faster than it reads
//!   responses is throttled by TCP instead of ballooning server memory.
//!
//! # Routing and parking
//!
//! This is where the shared-nothing data plane routes: every key is hashed
//! to its shard *before* any engine is touched. A key whose shard the
//! connection's own loop owns executes inline — plain field accesses on
//! loop-owned state, zero shared locks. A key owned by another loop is
//! forwarded as a [`DataOp`] message and the connection *parks*: it stops
//! parsing (keeping per-connection program order, exactly as if the
//! commands executed inline) and drops `EPOLLIN` interest until the
//! [`crate::plane::LoopMsg::DataReply`] arrives. Admin commands (`stats`,
//! `flush_all`, `app_create`, `app_list`) park the same way while the
//! control thread runs them — the event loop keeps serving every sibling
//! connection meanwhile, which is what ended admin head-of-line blocking.
//!
//! The command semantics (and every byte on the wire) are identical to the
//! old blocking handler; only the scheduling changed.

use crate::plane::{
    AdminOp, AdminResult, DataOp, DataOutcome, DataReplyTo, DataVerb, LoopMsg, LoopState,
};
use crate::protocol::{encode_response, Command, ParseOutcome, Parser, Response, StoreVerb, Value};
use bytes::{Bytes, BytesMut};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

use crate::reactor::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Pending-output bytes above which the connection stops reading and
/// parsing until the socket drains (and above which a pipelined batch is
/// cut, matching the old handler's flush threshold).
pub(crate) const OUT_HIGH_WATERMARK: usize = 256 * 1024;
/// Bytes read from the socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;
/// Bytes buffered per fill pass before yielding back to the loop, so one
/// fire-hosing connection cannot starve its siblings (level-triggered
/// epoll re-schedules it immediately).
const IN_FILL_BUDGET: usize = 256 * 1024;

/// What a connection needs from its event loop to execute commands: the
/// loop-owned state (engines, tenant table, outbound queues) and its own
/// token, so forwarded operations can find their way back.
pub(crate) struct Ctx<'a> {
    pub(crate) state: &'a mut LoopState,
    pub(crate) token: u64,
}

/// What the reactor should do with the connection after a readiness pass.
pub(crate) enum Drive {
    /// Keep it registered with this interest set.
    Keep {
        /// Desired epoll interest bits.
        interest: u32,
        /// Whether they differ from the currently registered set.
        changed: bool,
    },
    /// Deregister and drop it.
    Close,
}

/// How an I/O pass left the socket.
#[derive(PartialEq)]
enum Flow {
    /// Still usable.
    Open,
    /// The peer closed its writing half (serve what is buffered, then
    /// close).
    Eof,
    /// Hard I/O error: close now.
    Broken,
}

/// An operation in flight on another thread; the connection does not parse
/// until it resolves.
enum Pending {
    /// A (multi-)get with at least one remotely owned key. Local keys fill
    /// their slots immediately; remote slots fill as replies arrive.
    Get {
        seq: u64,
        keys: Vec<Bytes>,
        /// Outer `None` = reply outstanding; inner option = hit/miss.
        results: Vec<Option<Option<(u32, Bytes)>>>,
        remaining: usize,
    },
    /// A store verb forwarded to the owning loop.
    Store { seq: u64, noreply: bool },
    /// A delete forwarded to the owning loop.
    Delete { seq: u64, noreply: bool },
    /// An admin command running on the control thread.
    Admin { seq: u64 },
}

/// One client connection: socket, buffers, parser and session state.
pub(crate) struct Connection {
    stream: TcpStream,
    parser: Parser,
    inbuf: BytesMut,
    out: Vec<u8>,
    /// Bytes of `out` already written to the socket.
    out_pos: usize,
    /// The session's tenant namespace (`app <name>` switches it; index 0 —
    /// the default tenant — until then).
    tenant: usize,
    /// The interest set currently registered with epoll.
    interest: u32,
    /// Quit or EOF observed: flush the remaining output, then close.
    draining: bool,
    /// The operation the connection is parked on, if any.
    pending: Option<Pending>,
    /// Monotone sequence stamped on every parked operation, so a reply
    /// can never resolve the wrong one.
    op_seq: u64,
    /// Last time the peer gave us bytes or an operation resolved — the
    /// idle reaper's clock.
    last_activity: Instant,
}

/// What one parse-and-execute pass produced.
enum Step {
    /// Number of commands executed (0 = waiting for bytes, parked, or
    /// backpressured).
    Parsed(usize),
    /// The client sent `quit`.
    Quit,
}

impl Connection {
    /// Takes ownership of a freshly accepted socket, making it non-blocking.
    pub(crate) fn adopt(stream: TcpStream) -> std::io::Result<Connection> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            parser: Parser::new(),
            inbuf: BytesMut::with_capacity(READ_CHUNK),
            out: Vec::with_capacity(READ_CHUNK),
            out_pos: 0,
            tenant: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            draining: false,
            pending: None,
            op_seq: 0,
            last_activity: Instant::now(),
        })
    }

    /// The socket's fd, for epoll registration.
    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// The currently desired epoll interest set.
    pub(crate) fn interest(&self) -> u32 {
        self.interest
    }

    /// Whether an operation is in flight on another thread.
    pub(crate) fn is_parked(&self) -> bool {
        self.pending.is_some()
    }

    /// How long the connection has been silent, for the idle reaper.
    pub(crate) fn idle_for(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.last_activity)
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// One readiness pass: flush, fill, then parse/execute/flush until
    /// quiescent or parked.
    pub(crate) fn on_ready(&mut self, readable: bool, writable: bool, ctx: &mut Ctx<'_>) -> Drive {
        if readable || writable {
            self.last_activity = Instant::now();
        }
        if writable && self.flush() == Flow::Broken {
            return Drive::Close;
        }
        if readable && !self.draining {
            match self.fill() {
                Flow::Broken => return Drive::Close,
                Flow::Eof => self.draining = true,
                Flow::Open => {}
            }
        }
        // Parsing can be resumed by a flush that drains the output below
        // the watermark, so alternate the two until neither makes progress.
        loop {
            let parsed = match self.process(ctx) {
                Step::Parsed(n) => n,
                Step::Quit => {
                    // Commands pipelined after `quit` are never parsed,
                    // exactly like the blocking handler's early return.
                    self.draining = true;
                    self.inbuf.clear();
                    0
                }
            };
            if self.flush() == Flow::Broken {
                return Drive::Close;
            }
            if parsed == 0 || self.pending_out() > 0 {
                break;
            }
        }
        if self.draining && self.pending_out() == 0 && self.pending.is_none() {
            return Drive::Close;
        }
        let mut want = 0;
        if self.pending_out() > 0 {
            want |= EPOLLOUT;
        }
        // A parked connection reads nothing: per-connection order requires
        // the in-flight operation to resolve before the next command runs,
        // so there is no point waking on input we would not parse.
        if !self.draining && self.pending.is_none() && self.pending_out() < OUT_HIGH_WATERMARK {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        let changed = want != self.interest;
        self.interest = want;
        Drive::Keep {
            interest: want,
            changed,
        }
    }

    /// A [`DataOutcome`] arrived for a forwarded operation. Returns whether
    /// the parked operation completed (the loop should re-drive us).
    pub(crate) fn on_data_reply(&mut self, seq: u64, slot: usize, outcome: DataOutcome) -> bool {
        self.last_activity = Instant::now();
        let done = match &mut self.pending {
            Some(Pending::Get {
                seq: pending_seq,
                results,
                remaining,
                ..
            }) if *pending_seq == seq => {
                if slot < results.len() && results[slot].is_none() {
                    results[slot] = Some(match outcome {
                        DataOutcome::Value(found) => found,
                        DataOutcome::Flag(_) => None,
                    });
                    *remaining -= 1;
                }
                *remaining == 0
            }
            Some(Pending::Store {
                seq: pending_seq,
                noreply,
            }) if *pending_seq == seq => {
                if !*noreply {
                    let stored = matches!(outcome, DataOutcome::Flag(true));
                    let response = if stored {
                        Response::Stored
                    } else {
                        Response::NotStored
                    };
                    encode_response(&response, &mut self.out);
                }
                true
            }
            Some(Pending::Delete {
                seq: pending_seq,
                noreply,
            }) if *pending_seq == seq => {
                if !*noreply {
                    let deleted = matches!(outcome, DataOutcome::Flag(true));
                    let response = if deleted {
                        Response::Deleted
                    } else {
                        Response::NotFound
                    };
                    encode_response(&response, &mut self.out);
                }
                true
            }
            // A reply for an operation that is no longer pending (the seq
            // guard): drop it.
            _ => return false,
        };
        if !done {
            return false;
        }
        if let Some(Pending::Get { keys, results, .. }) = self.pending.take() {
            self.emit_get(keys, results);
        }
        true
    }

    /// The control thread finished an admin command this connection
    /// forwarded. Returns whether we were parked on it.
    pub(crate) fn on_admin_done(&mut self, seq: u64, result: AdminResult) -> bool {
        self.last_activity = Instant::now();
        match &self.pending {
            Some(Pending::Admin { seq: pending_seq }) if *pending_seq == seq => {}
            _ => return false,
        }
        self.pending = None;
        let response = match result {
            AdminResult::Stats(lines) => Response::Stats(lines),
            AdminResult::Blob(payload) => Response::Blob(payload),
            AdminResult::Flushed => Response::Ok,
            AdminResult::Created(Ok(_)) => Response::Ok,
            AdminResult::Created(Err(reason)) => Response::ClientError(reason),
            AdminResult::Apps(apps) => Response::Apps(
                apps.into_iter()
                    .map(|(name, weight, budget_bytes)| crate::protocol::AppEntry {
                        name,
                        weight,
                        budget_bytes,
                    })
                    .collect(),
            ),
        };
        encode_response(&response, &mut self.out);
        true
    }

    /// Reads whatever the socket has (bounded per pass).
    fn fill(&mut self) -> Flow {
        let mut chunk = [0u8; READ_CHUNK];
        let mut taken = 0usize;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Flow::Eof,
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    if taken >= IN_FILL_BUDGET {
                        return Flow::Open;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flow::Open,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Flow::Broken,
            }
        }
    }

    /// Parses and executes buffered commands until the input runs dry, an
    /// operation parks the connection, the output backs up past the
    /// watermark, or the client quits.
    fn process(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let mut parsed = 0;
        while self.pending.is_none() && self.pending_out() < OUT_HIGH_WATERMARK {
            match self.parser.parse(&mut self.inbuf) {
                ParseOutcome::Complete(Command::Quit) => return Step::Quit,
                ParseOutcome::Complete(command) => {
                    parsed += 1;
                    self.dispatch(command, ctx);
                }
                ParseOutcome::Invalid(message) => {
                    parsed += 1;
                    encode_response(&Response::ClientError(message), &mut self.out);
                }
                ParseOutcome::Incomplete => break,
            }
        }
        Step::Parsed(parsed)
    }

    fn next_seq(&mut self) -> u64 {
        self.op_seq += 1;
        self.op_seq
    }

    /// Executes one command: route by key hash, run locally when this loop
    /// owns the shard, forward and park otherwise.
    fn dispatch(&mut self, command: Command, ctx: &mut Ctx<'_>) {
        match command {
            Command::Get { keys } => {
                let seq = self.next_seq();
                let mut results: Vec<Option<Option<(u32, Bytes)>>> = vec![None; keys.len()];
                let mut remaining = 0usize;
                for (slot, key) in keys.iter().enumerate() {
                    let (shard, id, route) = ctx.state.route(self.tenant, key);
                    match route {
                        Ok(local) => {
                            let outcome =
                                ctx.state
                                    .apply_local(local, self.tenant, id, key, &DataVerb::Get);
                            results[slot] = Some(match outcome {
                                DataOutcome::Value(found) => found,
                                DataOutcome::Flag(_) => None,
                            });
                        }
                        Err(owner) => {
                            // Promoted hot keys serve from the loop-local
                            // replica cache: no forward, no park.
                            if let Some(found) = ctx.state.replica_get(shard, self.tenant, id, key)
                            {
                                results[slot] = Some(Some(found));
                                continue;
                            }
                            // A replica miss on a promoted key rides the
                            // normal forward but asks the owner to fill us.
                            let hot_fill = ctx.state.wants_hot_fill(self.tenant, id);
                            remaining += 1;
                            let op = DataOp {
                                shard,
                                tenant: self.tenant,
                                id,
                                key: key.clone(),
                                verb: DataVerb::Get,
                                enqueued: Instant::now(),
                                reply: DataReplyTo::Conn {
                                    origin: ctx.state.index,
                                    token: ctx.token,
                                    seq,
                                    slot,
                                },
                                hot_fill,
                            };
                            ctx.state.forward(owner, LoopMsg::Data(op));
                        }
                    }
                }
                if remaining == 0 {
                    self.emit_get(keys, results);
                } else {
                    self.pending = Some(Pending::Get {
                        seq,
                        keys,
                        results,
                        remaining,
                    });
                }
            }
            Command::Store {
                verb,
                key,
                flags,
                data,
                noreply,
                ..
            } => {
                let verb = match verb {
                    StoreVerb::Set => DataVerb::Set { flags, data },
                    StoreVerb::Add => DataVerb::Add { flags, data },
                    StoreVerb::Replace => DataVerb::Replace { flags, data },
                };
                let (shard, id, route) = ctx.state.route(self.tenant, &key);
                match route {
                    Ok(local) => {
                        let outcome = ctx.state.apply_local(local, self.tenant, id, &key, &verb);
                        if !noreply {
                            let stored = matches!(outcome, DataOutcome::Flag(true));
                            let response = if stored {
                                Response::Stored
                            } else {
                                Response::NotStored
                            };
                            encode_response(&response, &mut self.out);
                        }
                    }
                    Err(owner) => {
                        let seq = self.next_seq();
                        let op = DataOp {
                            shard,
                            tenant: self.tenant,
                            id,
                            key,
                            verb,
                            enqueued: Instant::now(),
                            reply: DataReplyTo::Conn {
                                origin: ctx.state.index,
                                token: ctx.token,
                                seq,
                                slot: 0,
                            },
                            hot_fill: false,
                        };
                        ctx.state.forward(owner, LoopMsg::Data(op));
                        // Parked even on noreply: the next command must
                        // observe this store, so program order requires the
                        // reply before parsing resumes.
                        self.pending = Some(Pending::Store { seq, noreply });
                    }
                }
            }
            Command::Delete { key, noreply } => {
                let (shard, id, route) = ctx.state.route(self.tenant, &key);
                match route {
                    Ok(local) => {
                        let outcome =
                            ctx.state
                                .apply_local(local, self.tenant, id, &key, &DataVerb::Delete);
                        if !noreply {
                            let deleted = matches!(outcome, DataOutcome::Flag(true));
                            let response = if deleted {
                                Response::Deleted
                            } else {
                                Response::NotFound
                            };
                            encode_response(&response, &mut self.out);
                        }
                    }
                    Err(owner) => {
                        let seq = self.next_seq();
                        let op = DataOp {
                            shard,
                            tenant: self.tenant,
                            id,
                            key,
                            verb: DataVerb::Delete,
                            enqueued: Instant::now(),
                            reply: DataReplyTo::Conn {
                                origin: ctx.state.index,
                                token: ctx.token,
                                seq,
                                slot: 0,
                            },
                            hot_fill: false,
                        };
                        ctx.state.forward(owner, LoopMsg::Data(op));
                        self.pending = Some(Pending::Delete { seq, noreply });
                    }
                }
            }
            Command::App { id } => {
                let response = match std::str::from_utf8(&id)
                    .ok()
                    .and_then(|name| ctx.state.tenant_lookup(name))
                {
                    Some(index) => {
                        self.tenant = index;
                        Response::Ok
                    }
                    None => Response::ClientError(format!(
                        "unknown app {:?} (hosted: {})",
                        String::from_utf8_lossy(&id),
                        ctx.state.tenant_names().join(", ")
                    )),
                };
                encode_response(&response, &mut self.out);
            }
            Command::AppCreate { name, weight } => match std::str::from_utf8(&name) {
                Ok(name) => self.forward_admin(
                    AdminOp::CreateTenant {
                        name: name.to_string(),
                        weight,
                    },
                    ctx,
                ),
                Err(_) => encode_response(
                    &Response::ClientError("app names must be UTF-8".to_string()),
                    &mut self.out,
                ),
            },
            Command::AppList => self.forward_admin(AdminOp::AppList, ctx),
            Command::Stats { format } => self.forward_admin(AdminOp::Stats { format }, ctx),
            Command::Version => encode_response(
                &Response::Version("cliffhanger-cache 0.1.0".to_string()),
                &mut self.out,
            ),
            Command::FlushAll => {
                // Tenant-scoped: one application flushing its namespace
                // must never wipe another application's working set. On a
                // single-tenant server this clears everything, as before.
                self.forward_admin(
                    AdminOp::FlushTenant {
                        tenant: self.tenant,
                    },
                    ctx,
                )
            }
            Command::Quit => encode_response(&Response::Ok, &mut self.out),
        }
    }

    /// Hands an admin command to the control thread and parks until the
    /// [`crate::plane::LoopMsg::AdminDone`] comes back.
    fn forward_admin(&mut self, op: AdminOp, ctx: &mut Ctx<'_>) {
        let seq = self.next_seq();
        if ctx.state.forward_admin(op, ctx.token, seq) {
            self.pending = Some(Pending::Admin { seq });
        } else {
            // The control thread is gone: the server is shutting down and
            // this connection is about to be torn down with its loop.
            encode_response(
                &Response::ClientError("server is shutting down".to_string()),
                &mut self.out,
            );
        }
    }

    /// Encodes a completed (multi-)get: hits in request order, misses
    /// omitted, exactly like the inline path.
    fn emit_get(&mut self, keys: Vec<Bytes>, results: Vec<Option<Option<(u32, Bytes)>>>) {
        let values: Vec<Value> = keys
            .into_iter()
            .zip(results)
            .filter_map(|(key, result)| {
                result
                    .flatten()
                    .map(|(flags, data)| Value { key, flags, data })
            })
            .collect();
        encode_response(&Response::Values(values), &mut self.out);
    }

    /// Writes as much parked output as the socket accepts.
    fn flush(&mut self) -> Flow {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Flow::Broken,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Flow::Broken,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
            self.out.shrink_to(OUT_HIGH_WATERMARK);
        } else if self.out_pos >= OUT_HIGH_WATERMARK {
            // Reclaim the written prefix so a long-parked connection does
            // not hold both the sent and unsent halves forever.
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Flow::Open
    }
}
