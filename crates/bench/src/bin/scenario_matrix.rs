//! The resilience scenario matrix: runs named chaos/replay scenarios and
//! emits a versioned `cliffhanger-scenario-matrix/v1` JSON report.
//!
//! Run with:
//! `cargo run --release -p bench --bin scenario_matrix -- [--smoke] [--scale F]
//!  [--scenarios a,b,c] [--p99-us N] [--json out.json] [--out-dir dir]`
//!
//! * `--smoke` — down-scale every scenario to 5% of its standard request
//!   volume (floored per phase), for CI smoke jobs and local iteration.
//! * `--scale F` — explicit scale factor (overrides `--smoke`).
//! * `--scenarios a,b,c` — run a subset; default is every named scenario.
//! * `--p99-us N` — replace every phase-p99 invariant bound with `N`
//!   microseconds; `--p99-us 0` is CI's deliberately-broken invariant,
//!   proving a violated invariant fails the run with its name.
//! * `--json PATH` — write the matrix report there (stdout gets it always).
//! * `--out-dir DIR` — additionally write one `scenario-<name>.json` per
//!   scenario (the nightly per-scenario artifacts).
//!
//! Exit status is non-zero when any scenario fails an invariant or errors
//! out; the failure message names the violated invariant.

use loadgen::scenario::{named_scenario, run_scenario, scenario_names, ScenarioMatrixReport};
use loadgen::SCENARIO_MATRIX_SCHEMA;
use std::process::ExitCode;

struct Options {
    scale: f64,
    scenarios: Vec<String>,
    p99_us: Option<f64>,
    json: Option<String>,
    out_dir: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale: 1.0,
        scenarios: scenario_names().iter().map(|s| s.to_string()).collect(),
        p99_us: None,
        json: None,
        out_dir: None,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--smoke" => opts.scale = 0.05,
            "--scale" => {
                opts.scale = take(i)?
                    .parse()
                    .map_err(|_| "--scale needs a number".to_string())?;
                i += 1;
            }
            "--scenarios" => {
                opts.scenarios = take(i)?.split(',').map(|s| s.trim().to_string()).collect();
                i += 1;
            }
            "--p99-us" => {
                opts.p99_us = Some(
                    take(i)?
                        .parse()
                        .map_err(|_| "--p99-us needs a number".to_string())?,
                );
                i += 1;
            }
            "--json" => {
                opts.json = Some(take(i)?.clone());
                i += 1;
            }
            "--out-dir" => {
                opts.out_dir = Some(take(i)?.clone());
                i += 1;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if opts.scale <= 0.0 {
        return Err("--scale must be positive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("scenario_matrix: {err}");
            eprintln!(
                "usage: scenario_matrix [--smoke] [--scale F] [--scenarios a,b,c] \
                 [--p99-us N] [--json out.json] [--out-dir dir]"
            );
            return ExitCode::FAILURE;
        }
    };

    let mut matrix = ScenarioMatrixReport {
        schema: SCENARIO_MATRIX_SCHEMA.to_string(),
        scale: opts.scale,
        scenarios: Vec::new(),
    };
    let mut failures: Vec<String> = Vec::new();
    for name in &opts.scenarios {
        let Some(mut scenario) = named_scenario(name) else {
            eprintln!(
                "scenario_matrix: unknown scenario `{name}` (known: {})",
                scenario_names().join(", ")
            );
            return ExitCode::FAILURE;
        };
        scenario = scenario.scaled(opts.scale);
        if let Some(max_us) = opts.p99_us {
            scenario.override_p99(max_us);
        }
        eprintln!(
            "scenario_matrix: running {name} (scale {:.3}, {} requests, {} phases, {} chaos actors)",
            scenario.scale,
            scenario.total_requests(),
            scenario.phases.len(),
            scenario.chaos.len()
        );
        let report = match run_scenario(&scenario) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("scenario_matrix: scenario {name} failed to run: {err}");
                failures.push(format!("{name}: engine error: {err}"));
                continue;
            }
        };
        for verdict in &report.invariants {
            let flag = if verdict.pass { "ok  " } else { "FAIL" };
            eprintln!("  {flag} {:<28} {}", verdict.name, verdict.detail);
            if !verdict.pass {
                failures.push(format!(
                    "scenario {name} violated invariant {}: {}",
                    verdict.name, verdict.detail
                ));
            }
        }
        if let Some(dir) = &opts.out_dir {
            let path = format!("{dir}/scenario-{name}.json");
            if let Err(err) =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, report.to_json()))
            {
                eprintln!("scenario_matrix: cannot write {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
        matrix.scenarios.push(report);
    }

    let json = matrix.to_json();
    println!("{json}");
    if let Some(path) = &opts.json {
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("scenario_matrix: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
    }
    if failures.is_empty() {
        eprintln!("scenario_matrix: all invariants green");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("scenario_matrix: {failure}");
        }
        ExitCode::FAILURE
    }
}
