//! Simplified 2Q eviction (Johnson & Shasha, VLDB 1994).
//!
//! 2Q admits new keys into a small FIFO (`A1in`). Keys evicted from `A1in`
//! leave a ghost entry in `A1out`; if a ghosted key is requested again it is
//! admitted directly into the main LRU (`Am`). This filters one-hit wonders
//! out of the main queue with a single extra ghost lookup per miss.
//!
//! As with [ARC](super::arc), the capacity `c` (in items) is estimated as the
//! largest resident population observed, because byte budgets and eviction
//! are enforced by the owning queue, not by the policy.

use crate::key::Key;
use crate::lru::{HitLocation, InsertPosition, LruList};
use crate::policy::{EvictionPolicy, PolicyKind};
use crate::shadow::ShadowQueue;
use std::collections::HashSet;

/// Fraction of the capacity reserved for the `A1in` FIFO.
const KIN_FRACTION: f64 = 0.25;
/// Fraction of the capacity used for the `A1out` ghost list.
const KOUT_FRACTION: f64 = 0.5;

/// Simplified 2Q policy; see the module documentation.
#[derive(Debug)]
pub struct TwoQPolicy {
    a1in: LruList,
    am: LruList,
    a1out: ShadowQueue,
    /// Keys whose next insertion goes straight to `Am` (ghost hits).
    pending_main: HashSet<Key>,
    /// Estimated capacity in items.
    c: usize,
}

impl Default for TwoQPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoQPolicy {
    /// Creates an empty 2Q policy.
    pub fn new() -> Self {
        TwoQPolicy {
            a1in: LruList::new(),
            am: LruList::new(),
            a1out: ShadowQueue::new(0),
            pending_main: HashSet::new(),
            c: 0,
        }
    }

    fn kin(&self) -> usize {
        ((self.c as f64 * KIN_FRACTION).ceil() as usize).max(1)
    }

    fn update_capacity_estimate(&mut self) {
        let resident = self.a1in.len() + self.am.len();
        if resident > self.c {
            self.c = resident;
            let kout = ((self.c as f64 * KOUT_FRACTION).ceil() as usize).max(1);
            self.a1out.set_capacity(kout);
        }
    }

    /// Sizes of (A1in, Am, A1out) — diagnostics and tests.
    pub fn list_sizes(&self) -> (usize, usize, usize) {
        (self.a1in.len(), self.am.len(), self.a1out.len())
    }
}

impl EvictionPolicy for TwoQPolicy {
    fn access(&mut self, key: Key) -> Option<HitLocation> {
        if self.am.access(key).is_some() {
            Some(HitLocation::Main)
        } else if self.a1in.contains(key) {
            // 2Q leaves A1in entries where they are on a hit; promotion only
            // happens via the A1out ghost path.
            Some(HitLocation::Main)
        } else {
            None
        }
    }

    fn on_miss(&mut self, key: Key) {
        if self.a1out.remove(key) {
            self.pending_main.insert(key);
        }
    }

    fn insert(&mut self, key: Key, weight: u64) {
        self.a1in.remove(key);
        self.am.remove(key);
        if self.pending_main.remove(&key) {
            self.am.insert(key, weight, InsertPosition::Top);
        } else {
            self.a1in.insert(key, weight, InsertPosition::Top);
        }
        self.update_capacity_estimate();
    }

    fn evict(&mut self) -> Option<(Key, u64)> {
        if self.a1in.len() > self.kin() || self.am.is_empty() {
            if let Some((key, weight)) = self.a1in.pop_lru() {
                self.a1out.insert(key);
                return Some((key, weight));
            }
        }
        self.am.pop_lru().or_else(|| {
            let (key, weight) = self.a1in.pop_lru()?;
            self.a1out.insert(key);
            Some((key, weight))
        })
    }

    fn remove(&mut self, key: Key) -> Option<u64> {
        self.pending_main.remove(&key);
        self.a1in.remove(key).or_else(|| self.am.remove(key))
    }

    fn contains(&self, key: Key) -> bool {
        self.a1in.contains(key) || self.am.contains(key)
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn total_weight(&self) -> u64 {
        self.a1in.total_weight() + self.am.total_weight()
    }

    fn set_tail_region(&mut self, _items: usize) {}

    fn kind(&self) -> PolicyKind {
        PolicyKind::TwoQ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance::{basic_contract, key, no_duplicate_evictions};

    #[test]
    fn conforms_to_policy_contract() {
        basic_contract(Box::new(TwoQPolicy::new()));
        no_duplicate_evictions(Box::new(TwoQPolicy::new()));
    }

    #[test]
    fn new_keys_enter_a1in() {
        let mut p = TwoQPolicy::new();
        p.insert(key(1), 1);
        p.insert(key(2), 1);
        let (a1in, am, _) = p.list_sizes();
        assert_eq!(a1in, 2);
        assert_eq!(am, 0);
    }

    #[test]
    fn ghosted_keys_are_promoted_to_main_on_return() {
        let mut p = TwoQPolicy::new();
        for i in 0..8 {
            p.insert(key(i), 1);
        }
        // Evict a key out of A1in; it leaves a ghost.
        let (victim, _) = p.evict().unwrap();
        assert!(!p.contains(victim));
        p.on_miss(victim);
        p.insert(victim, 1);
        let (_, am, _) = p.list_sizes();
        assert_eq!(am, 1, "ghost-hit key must be admitted to Am");
    }

    #[test]
    fn scan_resistance() {
        let mut p = TwoQPolicy::new();
        // Working set promoted to Am via the ghost path.
        for i in 0..16 {
            p.insert(key(i), 1);
        }
        let mut ghosts = Vec::new();
        while let Some((k, _)) = p.evict() {
            ghosts.push(k);
        }
        for &k in &ghosts {
            p.on_miss(k);
            p.insert(k, 1);
        }
        let (_, am_before, _) = p.list_sizes();
        assert!(am_before >= 8, "working set should be in Am");
        // Scan one-time keys through the cache at a fixed capacity.
        for i in 0..5_000u64 {
            let k = key(10_000 + i);
            p.on_miss(k);
            p.insert(k, 1);
            while p.len() > 32 {
                p.evict();
            }
        }
        let survivors = (0..16).filter(|&i| p.contains(key(i))).count();
        assert!(
            survivors >= 8,
            "2Q should protect the Am working set from scans, {survivors}/16 survived"
        );
    }

    #[test]
    fn does_not_support_tail_region() {
        assert!(!TwoQPolicy::new().supports_tail_region());
    }
}
