//! Time-dynamics experiments: Figure 8 (memory allocated per slab class over
//! time under hill climbing), Figure 9 (hit rate converging while a cliff is
//! scaled) and Table 4 (the ablation of the two algorithms on application
//! 19).

use crate::engine::{replay_app, CacheSystem, CliffhangerMode};
use crate::experiments::ExperimentContext;
use crate::report::{FigureSeries, Table};
use cache_core::PolicyKind;

/// Figure 8: memory allocated to each active slab class over time for
/// application 5 (the application whose traffic shifts between size classes
/// mid-trace), under Cliffhanger's hill climbing.
pub fn figure8_memory_over_time(ctx: &ExperimentContext, samples: usize) -> FigureSeries {
    let app_number = 5;
    let trace = ctx.trace(app_number);
    let options = ctx.options(app_number).with_timeline(samples.max(2));
    let result = replay_app(
        trace,
        &CacheSystem::Cliffhanger {
            mode: CliffhangerMode::HillClimbingOnly,
            policy: PolicyKind::Lru,
        },
        &options,
    );

    // Report only classes that ever hold a meaningful share of memory, so the
    // figure matches the paper's "slabs 4–9" style of presentation.
    let num_classes = options.slab.num_classes();
    let mut active = vec![false; num_classes];
    for point in &result.timeline {
        for (idx, &used) in point.class_used.iter().enumerate() {
            if used > options.reserved_bytes / 100 {
                active[idx] = true;
            }
        }
    }
    let active_classes: Vec<usize> = (0..num_classes).filter(|&i| active[i]).collect();
    let labels: Vec<String> = active_classes
        .iter()
        .map(|&i| format!("slab {i} (MB)"))
        .collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let mut fig = FigureSeries::new(
        "Figure 8: memory allocated to slab classes over time (application 5, hill climbing)",
        "seconds",
        &label_refs,
    );
    for point in &result.timeline {
        let ys: Vec<f64> = active_classes
            .iter()
            .map(|&i| point.class_targets.get(i).copied().unwrap_or(0) as f64 / (1 << 20) as f64)
            .collect();
        fig.push(point.time as f64, ys);
    }
    fig
}

/// Figure 9: the hit rate of application 19 over time under the combined
/// algorithms, sampled in intervals (the paper shows the queue starting
/// around 70% and converging upward as the cliff is scaled).
pub fn figure9_convergence(ctx: &ExperimentContext, samples: usize) -> FigureSeries {
    let app_number = 19;
    let trace = ctx.trace(app_number);
    let options = ctx.options(app_number).with_timeline(samples.max(2));
    let managed = replay_app(trace, &CacheSystem::cliffhanger(), &options);
    let baseline = replay_app(trace, &CacheSystem::default_lru(), &options);

    let mut fig = FigureSeries::new(
        "Figure 9: application 19 hit rate over time (Cliffhanger vs default)",
        "seconds",
        &["Cliffhanger interval hit rate", "default interval hit rate"],
    );
    for (m, d) in managed.timeline.iter().zip(baseline.timeline.iter()) {
        fig.push(
            m.time as f64,
            vec![m.interval_hit_rate, d.interval_hit_rate],
        );
    }
    fig
}

/// Table 4: application 19 under the default scheme, cliff scaling only,
/// hill climbing only, and the combined algorithms — per dominant slab class
/// and in total.
pub fn table4_ablation(ctx: &ExperimentContext) -> Table {
    let app_number = 19;
    let trace = ctx.trace(app_number);
    let options = ctx.options(app_number);

    let systems = [
        ("default", CacheSystem::default_lru()),
        (
            "cliff scaling",
            CacheSystem::Cliffhanger {
                mode: CliffhangerMode::CliffScalingOnly,
                policy: PolicyKind::Lru,
            },
        ),
        (
            "hill climbing",
            CacheSystem::Cliffhanger {
                mode: CliffhangerMode::HillClimbingOnly,
                policy: PolicyKind::Lru,
            },
        ),
        ("combined", CacheSystem::cliffhanger()),
    ];
    let results: Vec<_> = systems
        .iter()
        .map(|(_, system)| replay_app(trace, system, &options))
        .collect();

    // The two slab classes with the most GETs under the default run.
    let mut by_gets: Vec<(usize, u64)> = results[0]
        .class_stats
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s.gets))
        .collect();
    by_gets.sort_by_key(|&(_, g)| std::cmp::Reverse(g));
    let top_classes: Vec<usize> = by_gets.iter().take(2).map(|&(i, _)| i).collect();

    let mut headers: Vec<String> = vec!["slab class".to_string()];
    headers.extend(systems.iter().map(|(name, _)| format!("{name} hit rate")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table 4: application 19 — default vs cliff scaling vs hill climbing vs combined",
        &header_refs,
    );
    for &class in &top_classes {
        let mut row = vec![class.to_string()];
        for result in &results {
            let rate = result
                .class_stats
                .get(class)
                .map(|s| s.hit_ratio().value())
                .unwrap_or(0.0);
            row.push(Table::pct(rate));
        }
        table.push_row(row);
    }
    let mut total_row = vec!["total".to_string()];
    for result in &results {
        total_row.push(Table::pct(result.hit_rate()));
    }
    table.push_row(total_row);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::shared_quick_context;

    #[test]
    fn figure8_reports_multiple_classes_over_time() {
        let ctx = shared_quick_context();
        let fig = figure8_memory_over_time(ctx, 20);
        assert!(fig.points.len() >= 15);
        assert!(
            fig.series_labels.len() >= 2,
            "application 5 spans several slab classes: {:?}",
            fig.series_labels
        );
        // Time is non-decreasing.
        assert!(fig.points.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn figure9_tracks_two_systems() {
        let ctx = shared_quick_context();
        let fig = figure9_convergence(ctx, 15);
        assert!(fig.points.len() >= 10);
        for (_, ys) in &fig.points {
            assert_eq!(ys.len(), 2);
            assert!(ys.iter().all(|y| (0.0..=1.0).contains(y)));
        }
    }

    #[test]
    fn table4_has_two_classes_and_a_total() {
        let ctx = shared_quick_context();
        let table = table4_ablation(ctx);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.headers.len(), 5);
        assert_eq!(table.rows.last().unwrap()[0], "total");
    }
}
