//! Item-size distributions.
//!
//! The paper's Table 1 shows that applications mix item sizes across several
//! slab classes and that the mix — not just the popularity — drives the
//! allocation problem. Sizes here are **deterministic per key**: the same key
//! always has the same size (as in a real application, where a key maps to a
//! particular object), derived by hashing the key id into the distribution's
//! quantile function.

use cache_core::key::mix64;
use serde::{Deserialize, Serialize};

/// A distribution of item (value) sizes in bytes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Every item has the same size.
    Fixed(u64),
    /// Uniform between `min` and `max` (inclusive).
    Uniform {
        /// Smallest size.
        min: u64,
        /// Largest size.
        max: u64,
    },
    /// Log-normal with the given parameters of the underlying normal
    /// distribution (sizes are clamped to `[1, cap]`).
    LogNormal {
        /// Mean of `ln(size)`.
        mu: f64,
        /// Standard deviation of `ln(size)`.
        sigma: f64,
        /// Upper clamp in bytes.
        cap: u64,
    },
    /// Generalized Pareto — the fit the Facebook ETC study reports for value
    /// sizes (Atikoglu et al., SIGMETRICS 2012).
    GeneralizedPareto {
        /// Location parameter (bytes).
        location: f64,
        /// Scale parameter.
        scale: f64,
        /// Shape parameter.
        shape: f64,
        /// Upper clamp in bytes.
        cap: u64,
    },
    /// A weighted mixture of other distributions; the component is also
    /// chosen deterministically per key.
    Mixture(Vec<(f64, SizeDistribution)>),
}

impl SizeDistribution {
    /// The Facebook ETC value-size fit (location 0, scale 214.476, shape
    /// 0.348468), capped at 1 MB.
    pub fn facebook_etc() -> Self {
        SizeDistribution::GeneralizedPareto {
            location: 0.0,
            scale: 214.476,
            shape: 0.348_468,
            cap: 1 << 20,
        }
    }

    /// The size of the item identified by `key_id`, deterministic per key.
    ///
    /// `salt` decorrelates the size assignment from other per-key decisions
    /// (e.g. partition routing) that also hash the key id.
    pub fn size_for_key(&self, key_id: u64, salt: u64) -> u64 {
        let u = uniform01(key_id, salt);
        self.quantile(u, key_id, salt)
    }

    fn quantile(&self, u: f64, key_id: u64, salt: u64) -> u64 {
        match self {
            SizeDistribution::Fixed(size) => (*size).max(1),
            SizeDistribution::Uniform { min, max } => {
                let lo = (*min).min(*max).max(1);
                let hi = (*max).max(lo);
                lo + ((hi - lo + 1) as f64 * u) as u64
            }
            SizeDistribution::LogNormal { mu, sigma, cap } => {
                let z = normal_quantile(u);
                let size = (mu + sigma * z).exp();
                (size.round() as u64).clamp(1, (*cap).max(1))
            }
            SizeDistribution::GeneralizedPareto {
                location,
                scale,
                shape,
                cap,
            } => {
                // Inverse CDF of the generalized Pareto distribution.
                let u = u.clamp(1e-12, 1.0 - 1e-12);
                let size = if shape.abs() < 1e-9 {
                    location - scale * (1.0 - u).ln()
                } else {
                    location + scale * ((1.0 - u).powf(-shape) - 1.0) / shape
                };
                (size.round().max(1.0) as u64).clamp(1, (*cap).max(1))
            }
            SizeDistribution::Mixture(components) => {
                let total: f64 = components.iter().map(|(w, _)| w.max(0.0)).sum();
                if total <= 0.0 || components.is_empty() {
                    return 1;
                }
                // Choose the component with an independent per-key draw, then
                // sample the component with the original quantile.
                let pick = uniform01(key_id, salt ^ 0x5eed_c0ff_ee00_0001);
                let mut acc = 0.0;
                for (w, dist) in components {
                    acc += w.max(0.0) / total;
                    if pick <= acc {
                        return dist.quantile(u, key_id, salt ^ 0x0bad_cafe);
                    }
                }
                components
                    .last()
                    .map(|(_, d)| d.quantile(u, key_id, salt ^ 0x0bad_cafe))
                    .unwrap_or(1)
            }
        }
    }

    /// The mean size, estimated over a deterministic sample of keys.
    pub fn approximate_mean(&self, samples: u64) -> f64 {
        let samples = samples.max(1);
        let total: u128 = (0..samples)
            .map(|k| self.size_for_key(k, 0x00de_fa17) as u128)
            .sum();
        total as f64 / samples as f64
    }
}

/// Deterministic uniform draw in (0, 1) from a key id and salt.
fn uniform01(key_id: u64, salt: u64) -> f64 {
    let h = mix64(key_id ^ mix64(salt));
    ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Acklam's approximation of the standard normal quantile function.
fn normal_quantile(p: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_deterministic_per_key() {
        let dist = SizeDistribution::facebook_etc();
        for key in 0..100u64 {
            assert_eq!(dist.size_for_key(key, 7), dist.size_for_key(key, 7));
        }
        // Different salt gives a different (but still deterministic) mapping.
        let differs = (0..100u64).any(|k| dist.size_for_key(k, 7) != dist.size_for_key(k, 8));
        assert!(differs);
    }

    #[test]
    fn fixed_and_uniform_bounds() {
        assert_eq!(SizeDistribution::Fixed(512).size_for_key(1, 0), 512);
        let dist = SizeDistribution::Uniform { min: 100, max: 200 };
        for k in 0..1_000 {
            let s = dist.size_for_key(k, 1);
            assert!((100..=200).contains(&s), "size {s} out of bounds");
        }
    }

    #[test]
    fn lognormal_is_clamped_and_spread() {
        let dist = SizeDistribution::LogNormal {
            mu: 6.0,
            sigma: 1.0,
            cap: 10_000,
        };
        let sizes: Vec<u64> = (0..5_000).map(|k| dist.size_for_key(k, 2)).collect();
        assert!(sizes.iter().all(|&s| (1..=10_000).contains(&s)));
        let small = sizes.iter().filter(|&&s| s < 400).count();
        let large = sizes.iter().filter(|&&s| s > 1_000).count();
        assert!(small > 100 && large > 100, "distribution should spread");
    }

    #[test]
    fn generalized_pareto_matches_etc_scale() {
        let dist = SizeDistribution::facebook_etc();
        let mean = dist.approximate_mean(50_000);
        // The ETC fit has a mean around 330 bytes; allow a generous band.
        assert!(
            (150.0..700.0).contains(&mean),
            "ETC mean size = {mean:.1} bytes"
        );
        // Most values are small, but a heavy tail exists.
        let big = (0..50_000u64)
            .filter(|&k| dist.size_for_key(k, 3) > 5_000)
            .count();
        assert!(big > 10, "the ETC tail should produce some large values");
    }

    #[test]
    fn mixture_uses_both_components() {
        let dist = SizeDistribution::Mixture(vec![
            (0.7, SizeDistribution::Fixed(64)),
            (0.3, SizeDistribution::Fixed(4_096)),
        ]);
        let small = (0..10_000u64)
            .filter(|&k| dist.size_for_key(k, 5) == 64)
            .count();
        let large = (0..10_000u64)
            .filter(|&k| dist.size_for_key(k, 5) == 4_096)
            .count();
        assert_eq!(small + large, 10_000);
        let frac = small as f64 / 10_000.0;
        assert!((frac - 0.7).abs() < 0.05, "small fraction = {frac}");
    }

    #[test]
    fn normal_quantile_is_sane() {
        assert!(normal_quantile(0.5).abs() < 1e-6);
        assert!((normal_quantile(0.975) - 1.96).abs() < 0.01);
        assert!((normal_quantile(0.025) + 1.96).abs() < 0.01);
        assert!(normal_quantile(1e-9) < -5.0);
    }

    #[test]
    fn empty_mixture_defaults_to_one_byte() {
        let dist = SizeDistribution::Mixture(vec![]);
        assert_eq!(dist.size_for_key(3, 0), 1);
    }
}
