//! Compact cache keys and identifiers.
//!
//! Traces and the simulation path address items by a 64-bit [`Key`]; the TCP
//! server interns byte-string keys into [`Key`]s with [`hash_bytes`] plus an
//! exact-match side table (see the `cache-server` crate).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cache key: an opaque 64-bit identifier.
///
/// Keys are cheap to copy and hash; equality is exact (the substrate never
/// conflates two distinct `Key` values).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Key(pub u64);

impl Key {
    /// Creates a key from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Key(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:#x})", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Key {
    fn from(raw: u64) -> Self {
        Key(raw)
    }
}

/// Identifier of an application (tenant) sharing a cache server.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize, Default,
)]
pub struct AppId(pub u32);

impl AppId {
    /// Creates an application id.
    pub const fn new(raw: u32) -> Self {
        AppId(raw)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Identifier of a slab class within an application's cache.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize, Default,
)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Creates a slab-class id.
    pub const fn new(raw: u32) -> Self {
        ClassId(raw)
    }

    /// Returns the class index as a usize (for indexing per-class vectors).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slab{}", self.0)
    }
}

/// Hashes an arbitrary byte string to a 64-bit key value using the FNV-1a
/// function.
///
/// This is used by the TCP server to map textual Memcached keys onto the
/// compact [`Key`] space. FNV-1a is not collision-free; callers that need
/// exact semantics (the server does) must keep the original byte key and
/// verify it on lookup.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Mixes a 64-bit value (SplitMix64 finalizer); used to derive well-spread
/// key ids from sequential counters in workload generators.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn key_roundtrip() {
        let k = Key::new(42);
        assert_eq!(k.raw(), 42);
        assert_eq!(Key::from(42u64), k);
        assert_eq!(format!("{k}"), "0x2a");
    }

    #[test]
    fn hash_bytes_is_deterministic() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"world"));
    }

    #[test]
    fn hash_bytes_empty_is_offset_basis() {
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn mix64_spreads_sequential_inputs() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(mix64(i));
        }
        assert_eq!(seen.len(), 10_000, "mix64 collided on sequential inputs");
    }

    #[test]
    fn ids_display() {
        assert_eq!(AppId::new(3).to_string(), "app3");
        assert_eq!(ClassId::new(9).to_string(), "slab9");
        assert_eq!(ClassId::new(9).index(), 9);
    }
}
