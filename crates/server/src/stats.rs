//! The single `stats` renderer behind both backends, in three expositions.
//!
//! The embedded [`crate::backend::SharedCache`] and the server's
//! shared-nothing data plane assemble a [`StatsSnapshot`] from their own
//! worlds (engine locks there, loop-snapshot messages here) and render it
//! through [`render_stats`], so the stat key set and ordering cannot drift
//! between the two — the committed benchmark baselines and the CI smoke
//! validators parse these keys by name.
//!
//! The data plane additionally renders the same state machine-readably:
//! [`build_document`] assembles one versioned [`StatsDocument`]
//! (`cliffhanger-stats/v1`) carrying per-loop service-time quantiles and
//! the flight-recorder journal, and [`render_json`] / [`render_prom`]
//! serialise it as JSON or Prometheus text exposition. Both formats come
//! from the *same* document, so they cannot disagree.

use crate::backend::BackendMode;
use crate::reactor::ConnTelemetry;
use cache_core::CacheStats;
use serde::Serialize;
use telemetry::{Histogram, Journal, JournalEvent, LatencySummary};

/// The version tag of the machine-readable stats document.
pub(crate) const STATS_SCHEMA: &str = "cliffhanger-stats/v1";

/// A snapshot of wire-level counters for one engine (or an aggregate).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WireCounts {
    pub(crate) gets: u64,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) sets: u64,
    pub(crate) deletes: u64,
}

impl WireCounts {
    pub(crate) fn accumulate(&mut self, other: WireCounts) {
        self.gets += other.gets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sets += other.sets;
        self.deletes += other.deletes;
    }
}

/// Everything `stats` reports about one (shard, tenant) engine.
#[derive(Clone, Default)]
pub(crate) struct EngineStat {
    pub(crate) wire: WireCounts,
    pub(crate) core: CacheStats,
    pub(crate) used: u64,
    pub(crate) items: usize,
}

/// Round counters of the two balancing levels.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct BalanceCounters {
    pub(crate) rebalance_enabled: bool,
    pub(crate) rebalance_runs: u64,
    pub(crate) rebalance_transfers: u64,
    pub(crate) rebalance_bytes: u64,
    pub(crate) arbiter_enabled: bool,
    pub(crate) arbiter_runs: u64,
    pub(crate) arbiter_transfers: u64,
    pub(crate) arbiter_bytes: u64,
}

/// The backend-independent inputs of one `stats` report.
pub(crate) struct StatsSnapshot {
    pub(crate) total_bytes: u64,
    pub(crate) mode: BackendMode,
    pub(crate) requested_shards: usize,
    /// Engine stats indexed `[shard][tenant]`.
    pub(crate) cells: Vec<Vec<EngineStat>>,
    pub(crate) tenant_names: Vec<String>,
    pub(crate) tenant_budgets: Vec<u64>,
    pub(crate) shard_budgets: Vec<u64>,
    pub(crate) balance: BalanceCounters,
}

/// Per-event-loop counters of the shared-nothing data plane, reported only
/// by the server (`None` for the embedded backend).
pub(crate) struct PlaneStats {
    /// Owning event loop per shard index.
    pub(crate) owner_of: Vec<usize>,
    /// Per loop: (data ops executed for its own connections, data ops
    /// executed on behalf of another loop, data ops it forwarded away).
    pub(crate) per_loop: Vec<(u64, u64, u64)>,
    /// Admin commands forwarded to the control thread.
    pub(crate) admin_msgs: u64,
    /// The configured idle reaping timeout in milliseconds (0 = disabled).
    pub(crate) idle_timeout_ms: u64,
    /// Ops over the slow-op threshold, summed across loops.
    pub(crate) slow_ops: u64,
}

/// One event loop's service-time telemetry, as merged by the control
/// thread from the loop's snapshot.
#[derive(Clone, Default)]
pub(crate) struct LoopTelemetry {
    /// Service times of ops the loop ran for its own connections (ns).
    pub(crate) local: Histogram,
    /// Queue + service times of ops forwarded to the loop (ns).
    pub(crate) remote: Histogram,
    /// Ops over the slow-op threshold on this loop.
    pub(crate) slow_ops: u64,
}

/// Sums a snapshot's `[shard][tenant]` engine cells into server-wide,
/// per-tenant and per-shard aggregates — the one accumulation every
/// exposition format renders from.
struct Rollup {
    totals: WireCounts,
    core_total: CacheStats,
    used: u64,
    items: usize,
    tenant_wire: Vec<WireCounts>,
    tenant_core: Vec<CacheStats>,
    tenant_used: Vec<u64>,
    tenant_items: Vec<usize>,
    shard_wire: Vec<WireCounts>,
    shard_core: Vec<CacheStats>,
    shard_used: Vec<u64>,
    shard_items: Vec<usize>,
}

fn rollup(snap: &StatsSnapshot) -> Rollup {
    let ns = snap.cells.len();
    let nt = snap.tenant_names.len();
    let mut r = Rollup {
        totals: WireCounts::default(),
        core_total: CacheStats::default(),
        used: 0,
        items: 0,
        tenant_wire: vec![WireCounts::default(); nt],
        tenant_core: vec![CacheStats::default(); nt],
        tenant_used: vec![0u64; nt],
        tenant_items: vec![0usize; nt],
        shard_wire: vec![WireCounts::default(); ns],
        shard_core: vec![CacheStats::default(); ns],
        shard_used: vec![0u64; ns],
        shard_items: vec![0usize; ns],
    };
    for (s, cells) in snap.cells.iter().enumerate() {
        for (t, cell) in cells.iter().enumerate().take(nt) {
            r.totals.accumulate(cell.wire);
            r.core_total += cell.core;
            r.used += cell.used;
            r.items += cell.items;
            r.tenant_wire[t].accumulate(cell.wire);
            r.tenant_core[t] += cell.core;
            r.tenant_used[t] += cell.used;
            r.tenant_items[t] += cell.items;
            r.shard_wire[s].accumulate(cell.wire);
            r.shard_core[s] += cell.core;
            r.shard_used[s] += cell.used;
            r.shard_items[s] += cell.items;
        }
    }
    r
}

/// Renders a snapshot as the `STAT` key/value list: aggregated counters,
/// allocation-hierarchy counters, the optional connection section, then
/// per-tenant and per-shard breakdowns, then the optional data-plane
/// section.
pub(crate) fn render_stats(
    snap: &StatsSnapshot,
    conns: Option<&ConnTelemetry>,
    plane: Option<&PlaneStats>,
) -> Vec<(String, String)> {
    let ns = snap.cells.len();
    let nt = snap.tenant_names.len();
    let Rollup {
        totals,
        core_total,
        used,
        items,
        tenant_wire,
        tenant_core,
        tenant_used,
        tenant_items,
        shard_wire,
        shard_core,
        shard_used,
        shard_items,
    } = rollup(snap);

    let mut out = vec![
        ("cmd_get".into(), totals.gets.to_string()),
        ("cmd_set".into(), totals.sets.to_string()),
        ("get_hits".into(), totals.hits.to_string()),
        ("get_misses".into(), totals.misses.to_string()),
        ("cmd_delete".into(), totals.deletes.to_string()),
        ("bytes".into(), used.to_string()),
        ("curr_items".into(), items.to_string()),
        ("evictions".into(), core_total.evictions.to_string()),
        ("limit_maxbytes".into(), snap.total_bytes.to_string()),
        (
            "allocator".into(),
            format!("{:?}", snap.mode).to_lowercase(),
        ),
        ("shard_count".into(), ns.to_string()),
        ("shards_requested".into(), snap.requested_shards.to_string()),
        (
            "shard_bytes".into(),
            (snap.total_bytes / ns.max(1) as u64).to_string(),
        ),
        ("tenant_count".into(), nt.to_string()),
        (
            "rebalance:enabled".into(),
            (snap.balance.rebalance_enabled as u8).to_string(),
        ),
        (
            "rebalance:runs".into(),
            snap.balance.rebalance_runs.to_string(),
        ),
        (
            "rebalance:transfers".into(),
            snap.balance.rebalance_transfers.to_string(),
        ),
        (
            "rebalance:bytes_moved".into(),
            snap.balance.rebalance_bytes.to_string(),
        ),
        (
            "arbiter:enabled".into(),
            (snap.balance.arbiter_enabled as u8).to_string(),
        ),
        ("arbiter:runs".into(), snap.balance.arbiter_runs.to_string()),
        (
            "arbiter:transfers".into(),
            snap.balance.arbiter_transfers.to_string(),
        ),
        (
            "arbiter:bytes_moved".into(),
            snap.balance.arbiter_bytes.to_string(),
        ),
    ];
    if let Some(conns) = conns {
        out.push(("curr_connections".into(), conns.curr().to_string()));
        out.push(("total_connections".into(), conns.total().to_string()));
        out.push(("rejected_connections".into(), conns.rejected().to_string()));
        out.push((
            "max_connections".into(),
            conns.max_connections().to_string(),
        ));
        for i in 0..conns.loops() {
            out.push((format!("conns:loop:{i}"), conns.loop_curr(i).to_string()));
        }
        out.push((
            "idle_closed_connections".into(),
            conns.idle_closed().to_string(),
        ));
    }
    for t in 0..nt {
        let name = &snap.tenant_names[t];
        let wire = tenant_wire[t];
        out.push((format!("tenant:{name}:cmd_get"), wire.gets.to_string()));
        out.push((format!("tenant:{name}:cmd_set"), wire.sets.to_string()));
        out.push((format!("tenant:{name}:get_hits"), wire.hits.to_string()));
        out.push((format!("tenant:{name}:get_misses"), wire.misses.to_string()));
        out.push((
            format!("tenant:{name}:cmd_delete"),
            wire.deletes.to_string(),
        ));
        out.push((format!("tenant:{name}:bytes"), tenant_used[t].to_string()));
        out.push((
            format!("tenant:{name}:curr_items"),
            tenant_items[t].to_string(),
        ));
        out.push((
            format!("tenant:{name}:evictions"),
            tenant_core[t].evictions.to_string(),
        ));
        out.push((
            format!("tenant:{name}:budget"),
            snap.tenant_budgets[t].to_string(),
        ));
        out.push((
            format!("tenant:{name}:shadow_hits"),
            tenant_core[t].shadow_hits.to_string(),
        ));
    }
    for s in 0..ns {
        let wire = shard_wire[s];
        out.push((format!("shard:{s}:cmd_get"), wire.gets.to_string()));
        out.push((format!("shard:{s}:cmd_set"), wire.sets.to_string()));
        out.push((format!("shard:{s}:get_hits"), wire.hits.to_string()));
        out.push((format!("shard:{s}:get_misses"), wire.misses.to_string()));
        out.push((format!("shard:{s}:cmd_delete"), wire.deletes.to_string()));
        out.push((format!("shard:{s}:bytes"), shard_used[s].to_string()));
        out.push((format!("shard:{s}:curr_items"), shard_items[s].to_string()));
        out.push((
            format!("shard:{s}:evictions"),
            shard_core[s].evictions.to_string(),
        ));
        out.push((
            format!("shard:{s}:budget"),
            snap.shard_budgets[s].to_string(),
        ));
        out.push((
            format!("shard:{s}:shadow_hits"),
            shard_core[s].shadow_hits.to_string(),
        ));
    }
    if let Some(plane) = plane {
        let local: u64 = plane.per_loop.iter().map(|l| l.0).sum();
        let remote: u64 = plane.per_loop.iter().map(|l| l.1).sum();
        out.push(("plane:event_loops".into(), plane.per_loop.len().to_string()));
        out.push(("plane:local_ops".into(), local.to_string()));
        out.push(("plane:remote_ops".into(), remote.to_string()));
        out.push(("plane:admin_msgs".into(), plane.admin_msgs.to_string()));
        out.push((
            "plane:idle_timeout_ms".into(),
            plane.idle_timeout_ms.to_string(),
        ));
        out.push(("plane:slow_ops".into(), plane.slow_ops.to_string()));
        for (i, (local_ops, remote_in, remote_out)) in plane.per_loop.iter().enumerate() {
            out.push((format!("loop:{i}:local_ops"), local_ops.to_string()));
            out.push((format!("loop:{i}:remote_in"), remote_in.to_string()));
            out.push((format!("loop:{i}:remote_out"), remote_out.to_string()));
        }
        for (s, owner) in plane.owner_of.iter().enumerate() {
            out.push((format!("shard:{s}:owner_loop"), owner.to_string()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The machine-readable exposition: one versioned document, two renderings.
// ---------------------------------------------------------------------------

/// Server-wide wire counters.
#[derive(Serialize)]
pub(crate) struct CountersDoc {
    pub(crate) cmd_get: u64,
    pub(crate) cmd_set: u64,
    pub(crate) get_hits: u64,
    pub(crate) get_misses: u64,
    pub(crate) cmd_delete: u64,
    pub(crate) bytes: u64,
    pub(crate) curr_items: u64,
    pub(crate) evictions: u64,
    pub(crate) slow_ops: u64,
}

/// Static capacity and topology facts.
#[derive(Serialize)]
pub(crate) struct CapacityDoc {
    pub(crate) limit_maxbytes: u64,
    pub(crate) allocator: String,
    pub(crate) shard_count: usize,
    pub(crate) shards_requested: usize,
    pub(crate) tenant_count: usize,
    pub(crate) event_loops: usize,
}

/// Round counters of the two balancing levels.
#[derive(Serialize)]
pub(crate) struct BalanceDoc {
    pub(crate) rebalance_enabled: bool,
    pub(crate) rebalance_runs: u64,
    pub(crate) rebalance_transfers: u64,
    pub(crate) rebalance_bytes_moved: u64,
    pub(crate) arbiter_enabled: bool,
    pub(crate) arbiter_runs: u64,
    pub(crate) arbiter_transfers: u64,
    pub(crate) arbiter_bytes_moved: u64,
}

/// The accept gate's connection counters.
#[derive(Serialize)]
pub(crate) struct ConnectionsDoc {
    pub(crate) curr: u64,
    pub(crate) total: u64,
    pub(crate) rejected: u64,
    pub(crate) idle_closed: u64,
    pub(crate) max: u64,
    pub(crate) per_loop: Vec<u64>,
}

/// One event loop's ops and service-time quantiles.
#[derive(Serialize)]
pub(crate) struct LoopDoc {
    pub(crate) index: usize,
    pub(crate) local_ops: u64,
    pub(crate) remote_in: u64,
    pub(crate) remote_out: u64,
    pub(crate) slow_ops: u64,
    pub(crate) local_latency: LatencySummary,
    pub(crate) remote_latency: LatencySummary,
}

/// One tenant's aggregated counters.
#[derive(Serialize)]
pub(crate) struct TenantDoc {
    pub(crate) name: String,
    pub(crate) cmd_get: u64,
    pub(crate) cmd_set: u64,
    pub(crate) get_hits: u64,
    pub(crate) get_misses: u64,
    pub(crate) cmd_delete: u64,
    pub(crate) bytes: u64,
    pub(crate) curr_items: u64,
    pub(crate) evictions: u64,
    pub(crate) budget: u64,
    pub(crate) shadow_hits: u64,
}

/// One shard's aggregated counters and ownership.
#[derive(Serialize)]
pub(crate) struct ShardDoc {
    pub(crate) index: usize,
    pub(crate) owner_loop: usize,
    pub(crate) cmd_get: u64,
    pub(crate) get_hits: u64,
    pub(crate) bytes: u64,
    pub(crate) curr_items: u64,
    pub(crate) evictions: u64,
    pub(crate) budget: u64,
    pub(crate) shadow_hits: u64,
}

/// Data-plane totals and the control thread's own service times.
#[derive(Serialize)]
pub(crate) struct PlaneDoc {
    pub(crate) local_ops: u64,
    pub(crate) remote_ops: u64,
    pub(crate) admin_msgs: u64,
    pub(crate) idle_timeout_ms: u64,
    pub(crate) admin_latency: LatencySummary,
}

/// Server-wide service-time quantiles merged across every loop.
#[derive(Serialize)]
pub(crate) struct ServiceLatencyDoc {
    pub(crate) local: LatencySummary,
    pub(crate) remote: LatencySummary,
}

/// The flight recorder: ring facts plus the retained events, oldest first.
#[derive(Serialize)]
pub(crate) struct JournalDoc {
    pub(crate) capacity: usize,
    pub(crate) next_seq: u64,
    pub(crate) dropped: u64,
    pub(crate) events: Vec<JournalEvent>,
}

/// The versioned `cliffhanger-stats/v1` document behind `stats json` and
/// `stats prom`. Additive evolution only: consumers pin `schema` and
/// ignore fields they do not know.
#[derive(Serialize)]
pub(crate) struct StatsDocument {
    pub(crate) schema: String,
    pub(crate) counters: CountersDoc,
    pub(crate) capacity: CapacityDoc,
    pub(crate) balance: BalanceDoc,
    pub(crate) connections: Option<ConnectionsDoc>,
    pub(crate) service_latency: ServiceLatencyDoc,
    pub(crate) loops: Vec<LoopDoc>,
    pub(crate) tenants: Vec<TenantDoc>,
    pub(crate) shards: Vec<ShardDoc>,
    pub(crate) plane: PlaneDoc,
    pub(crate) journal: JournalDoc,
}

/// Assembles the machine-readable stats document from the same inputs the
/// text renderer uses, plus the per-loop latency telemetry and the journal.
pub(crate) fn build_document(
    snap: &StatsSnapshot,
    conns: Option<&ConnTelemetry>,
    plane: &PlaneStats,
    loops: &[LoopTelemetry],
    admin_latency: &Histogram,
    journal: &Journal,
) -> StatsDocument {
    let r = rollup(snap);
    let nt = snap.tenant_names.len();
    let ns = snap.cells.len();
    let mut local_merged = Histogram::new();
    let mut remote_merged = Histogram::new();
    for tel in loops {
        local_merged.merge(&tel.local);
        remote_merged.merge(&tel.remote);
    }
    StatsDocument {
        schema: STATS_SCHEMA.to_string(),
        counters: CountersDoc {
            cmd_get: r.totals.gets,
            cmd_set: r.totals.sets,
            get_hits: r.totals.hits,
            get_misses: r.totals.misses,
            cmd_delete: r.totals.deletes,
            bytes: r.used,
            curr_items: r.items as u64,
            evictions: r.core_total.evictions,
            slow_ops: plane.slow_ops,
        },
        capacity: CapacityDoc {
            limit_maxbytes: snap.total_bytes,
            allocator: format!("{:?}", snap.mode).to_lowercase(),
            shard_count: ns,
            shards_requested: snap.requested_shards,
            tenant_count: nt,
            event_loops: plane.per_loop.len(),
        },
        balance: BalanceDoc {
            rebalance_enabled: snap.balance.rebalance_enabled,
            rebalance_runs: snap.balance.rebalance_runs,
            rebalance_transfers: snap.balance.rebalance_transfers,
            rebalance_bytes_moved: snap.balance.rebalance_bytes,
            arbiter_enabled: snap.balance.arbiter_enabled,
            arbiter_runs: snap.balance.arbiter_runs,
            arbiter_transfers: snap.balance.arbiter_transfers,
            arbiter_bytes_moved: snap.balance.arbiter_bytes,
        },
        connections: conns.map(|c| ConnectionsDoc {
            curr: c.curr(),
            total: c.total(),
            rejected: c.rejected(),
            idle_closed: c.idle_closed(),
            max: c.max_connections(),
            per_loop: (0..c.loops()).map(|i| c.loop_curr(i)).collect(),
        }),
        service_latency: ServiceLatencyDoc {
            local: local_merged.summarize_us(),
            remote: remote_merged.summarize_us(),
        },
        loops: loops
            .iter()
            .enumerate()
            .map(|(i, tel)| {
                let (local_ops, remote_in, remote_out) =
                    plane.per_loop.get(i).copied().unwrap_or((0, 0, 0));
                LoopDoc {
                    index: i,
                    local_ops,
                    remote_in,
                    remote_out,
                    slow_ops: tel.slow_ops,
                    local_latency: tel.local.summarize_us(),
                    remote_latency: tel.remote.summarize_us(),
                }
            })
            .collect(),
        tenants: (0..nt)
            .map(|t| TenantDoc {
                name: snap.tenant_names[t].clone(),
                cmd_get: r.tenant_wire[t].gets,
                cmd_set: r.tenant_wire[t].sets,
                get_hits: r.tenant_wire[t].hits,
                get_misses: r.tenant_wire[t].misses,
                cmd_delete: r.tenant_wire[t].deletes,
                bytes: r.tenant_used[t],
                curr_items: r.tenant_items[t] as u64,
                evictions: r.tenant_core[t].evictions,
                budget: snap.tenant_budgets[t],
                shadow_hits: r.tenant_core[t].shadow_hits,
            })
            .collect(),
        shards: (0..ns)
            .map(|s| ShardDoc {
                index: s,
                owner_loop: plane.owner_of.get(s).copied().unwrap_or(0),
                cmd_get: r.shard_wire[s].gets,
                get_hits: r.shard_wire[s].hits,
                bytes: r.shard_used[s],
                curr_items: r.shard_items[s] as u64,
                evictions: r.shard_core[s].evictions,
                budget: snap.shard_budgets[s],
                shadow_hits: r.shard_core[s].shadow_hits,
            })
            .collect(),
        plane: PlaneDoc {
            local_ops: plane.per_loop.iter().map(|l| l.0).sum(),
            remote_ops: plane.per_loop.iter().map(|l| l.1).sum(),
            admin_msgs: plane.admin_msgs,
            idle_timeout_ms: plane.idle_timeout_ms,
            admin_latency: admin_latency.summarize_us(),
        },
        journal: JournalDoc {
            capacity: journal.capacity(),
            next_seq: journal.next_seq(),
            dropped: journal.dropped(),
            events: journal.snapshot(),
        },
    }
}

/// Renders the document as one line of JSON (the `stats json` payload).
pub(crate) fn render_json(doc: &StatsDocument) -> String {
    serde_json::to_string(doc).expect("stats document serialisation cannot fail")
}

/// Appends one Prometheus metric with `# TYPE` metadata.
fn prom_metric(out: &mut String, name: &str, kind: &str, lines: &[(String, String)]) {
    out.push_str(&format!("# TYPE {name} {kind}\n"));
    for (labels, value) in lines {
        if labels.is_empty() {
            out.push_str(&format!("{name} {value}\n"));
        } else {
            out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    }
}

/// Quantile label/value pairs for one latency summary, in microseconds.
fn prom_quantiles(class: &str, latency: &LatencySummary) -> Vec<(String, String)> {
    [
        ("0.5", latency.p50_us),
        ("0.9", latency.p90_us),
        ("0.99", latency.p99_us),
        ("0.999", latency.p999_us),
    ]
    .iter()
    .map(|(q, v)| (format!("class=\"{class}\",quantile=\"{q}\""), v.to_string()))
    .collect()
}

/// Renders the document in Prometheus text exposition format (the
/// `stats prom` payload). Same source document as the JSON rendering.
pub(crate) fn render_prom(doc: &StatsDocument) -> String {
    let mut out = String::new();
    let c = &doc.counters;
    for (name, value) in [
        ("cliffhanger_cmd_get_total", c.cmd_get),
        ("cliffhanger_cmd_set_total", c.cmd_set),
        ("cliffhanger_get_hits_total", c.get_hits),
        ("cliffhanger_get_misses_total", c.get_misses),
        ("cliffhanger_cmd_delete_total", c.cmd_delete),
        ("cliffhanger_evictions_total", c.evictions),
        ("cliffhanger_slow_ops_total", c.slow_ops),
    ] {
        prom_metric(
            &mut out,
            name,
            "counter",
            &[(String::new(), value.to_string())],
        );
    }
    for (name, value) in [
        ("cliffhanger_bytes_used", c.bytes),
        ("cliffhanger_curr_items", c.curr_items),
        ("cliffhanger_limit_maxbytes", doc.capacity.limit_maxbytes),
        ("cliffhanger_shard_count", doc.capacity.shard_count as u64),
        ("cliffhanger_tenant_count", doc.capacity.tenant_count as u64),
        ("cliffhanger_event_loops", doc.capacity.event_loops as u64),
    ] {
        prom_metric(
            &mut out,
            name,
            "gauge",
            &[(String::new(), value.to_string())],
        );
    }
    for (name, value) in [
        (
            "cliffhanger_rebalance_transfers_total",
            doc.balance.rebalance_transfers,
        ),
        (
            "cliffhanger_rebalance_bytes_moved_total",
            doc.balance.rebalance_bytes_moved,
        ),
        (
            "cliffhanger_arbiter_transfers_total",
            doc.balance.arbiter_transfers,
        ),
        (
            "cliffhanger_arbiter_bytes_moved_total",
            doc.balance.arbiter_bytes_moved,
        ),
    ] {
        prom_metric(
            &mut out,
            name,
            "counter",
            &[(String::new(), value.to_string())],
        );
    }
    if let Some(conns) = &doc.connections {
        prom_metric(
            &mut out,
            "cliffhanger_connections",
            "gauge",
            &[(String::new(), conns.curr.to_string())],
        );
        prom_metric(
            &mut out,
            "cliffhanger_connections_total",
            "counter",
            &[(String::new(), conns.total.to_string())],
        );
        prom_metric(
            &mut out,
            "cliffhanger_connections_rejected_total",
            "counter",
            &[(String::new(), conns.rejected.to_string())],
        );
        prom_metric(
            &mut out,
            "cliffhanger_connections_idle_closed_total",
            "counter",
            &[(String::new(), conns.idle_closed.to_string())],
        );
    }
    let mut latency_lines = prom_quantiles("local", &doc.service_latency.local);
    latency_lines.extend(prom_quantiles("remote", &doc.service_latency.remote));
    latency_lines.extend(prom_quantiles("admin", &doc.plane.admin_latency));
    prom_metric(
        &mut out,
        "cliffhanger_service_time_microseconds",
        "summary",
        &latency_lines,
    );
    let loop_ops: Vec<(String, String)> = doc
        .loops
        .iter()
        .flat_map(|l| {
            [
                (
                    format!("loop=\"{}\",kind=\"local\"", l.index),
                    l.local_ops.to_string(),
                ),
                (
                    format!("loop=\"{}\",kind=\"remote_in\"", l.index),
                    l.remote_in.to_string(),
                ),
                (
                    format!("loop=\"{}\",kind=\"remote_out\"", l.index),
                    l.remote_out.to_string(),
                ),
            ]
        })
        .collect();
    prom_metric(&mut out, "cliffhanger_loop_ops_total", "counter", &loop_ops);
    let tenant_bytes: Vec<(String, String)> = doc
        .tenants
        .iter()
        .map(|t| (format!("tenant=\"{}\"", t.name), t.bytes.to_string()))
        .collect();
    prom_metric(
        &mut out,
        "cliffhanger_tenant_bytes_used",
        "gauge",
        &tenant_bytes,
    );
    let tenant_budget: Vec<(String, String)> = doc
        .tenants
        .iter()
        .map(|t| (format!("tenant=\"{}\"", t.name), t.budget.to_string()))
        .collect();
    prom_metric(
        &mut out,
        "cliffhanger_tenant_budget_bytes",
        "gauge",
        &tenant_budget,
    );
    prom_metric(
        &mut out,
        "cliffhanger_journal_events_total",
        "counter",
        &[(String::new(), doc.journal.next_seq.to_string())],
    );
    out
}
