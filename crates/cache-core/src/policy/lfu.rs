//! Least-frequently-used eviction with LRU tie-breaking.

use crate::key::Key;
use crate::lru::HitLocation;
use crate::policy::{EvictionPolicy, PolicyKind};
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone, Copy)]
struct Meta {
    freq: u64,
    seq: u64,
    weight: u64,
}

/// LFU eviction: the victim is the resident key with the lowest access
/// frequency; ties are broken towards the least recently touched key.
///
/// Frequency counts are per-residency (they reset when a key is evicted and
/// later re-inserted), matching the in-queue frequency the ARC/LFU discussion
/// in the paper refers to.
#[derive(Debug, Default)]
pub struct LfuPolicy {
    meta: HashMap<Key, Meta>,
    // Ordered by (frequency, sequence of last touch, key): the first element
    // is always the eviction victim.
    order: BTreeSet<(u64, u64, Key)>,
    clock: u64,
    total_weight: u64,
}

impl LfuPolicy {
    /// Creates an empty LFU policy.
    pub fn new() -> Self {
        LfuPolicy::default()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn retouch(&mut self, key: Key, bump: bool) -> bool {
        let Some(meta) = self.meta.get(&key).copied() else {
            return false;
        };
        self.order.remove(&(meta.freq, meta.seq, key));
        let seq = self.tick();
        let freq = if bump { meta.freq + 1 } else { meta.freq };
        let updated = Meta { freq, seq, ..meta };
        self.meta.insert(key, updated);
        self.order.insert((freq, seq, key));
        true
    }

    /// Frequency count of a resident key (for tests and diagnostics).
    pub fn frequency(&self, key: Key) -> Option<u64> {
        self.meta.get(&key).map(|m| m.freq)
    }
}

impl EvictionPolicy for LfuPolicy {
    fn access(&mut self, key: Key) -> Option<HitLocation> {
        if self.retouch(key, true) {
            Some(HitLocation::Main)
        } else {
            None
        }
    }

    fn insert(&mut self, key: Key, weight: u64) {
        if let Some(old) = self.meta.remove(&key) {
            self.order.remove(&(old.freq, old.seq, key));
            self.total_weight -= old.weight;
        }
        let seq = self.tick();
        let meta = Meta {
            freq: 1,
            seq,
            weight,
        };
        self.meta.insert(key, meta);
        self.order.insert((1, seq, key));
        self.total_weight += weight;
    }

    fn evict(&mut self) -> Option<(Key, u64)> {
        let &(freq, seq, key) = self.order.iter().next()?;
        self.order.remove(&(freq, seq, key));
        let meta = self.meta.remove(&key).expect("order and meta in sync");
        self.total_weight -= meta.weight;
        Some((key, meta.weight))
    }

    fn remove(&mut self, key: Key) -> Option<u64> {
        let meta = self.meta.remove(&key)?;
        self.order.remove(&(meta.freq, meta.seq, key));
        self.total_weight -= meta.weight;
        Some(meta.weight)
    }

    fn contains(&self, key: Key) -> bool {
        self.meta.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.meta.len()
    }

    fn total_weight(&self) -> u64 {
        self.total_weight
    }

    fn set_tail_region(&mut self, _items: usize) {}

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance::{basic_contract, key, no_duplicate_evictions};

    #[test]
    fn conforms_to_policy_contract() {
        basic_contract(Box::new(LfuPolicy::new()));
        no_duplicate_evictions(Box::new(LfuPolicy::new()));
    }

    #[test]
    fn evicts_lowest_frequency_first() {
        let mut p = LfuPolicy::new();
        for i in 0..3 {
            p.insert(key(i), 1);
        }
        p.access(key(0));
        p.access(key(0));
        p.access(key(1));
        // Frequencies: 0 -> 3, 1 -> 2, 2 -> 1.
        assert_eq!(p.evict().unwrap().0, key(2));
        assert_eq!(p.evict().unwrap().0, key(1));
        assert_eq!(p.evict().unwrap().0, key(0));
    }

    #[test]
    fn ties_broken_by_recency() {
        let mut p = LfuPolicy::new();
        p.insert(key(1), 1);
        p.insert(key(2), 1);
        // Both have frequency 1; key 1 was touched less recently.
        assert_eq!(p.evict().unwrap().0, key(1));
    }

    #[test]
    fn frequency_resets_on_reinsert_after_eviction() {
        let mut p = LfuPolicy::new();
        p.insert(key(1), 1);
        p.access(key(1));
        p.access(key(1));
        assert_eq!(p.frequency(key(1)), Some(3));
        p.evict();
        p.insert(key(1), 1);
        assert_eq!(p.frequency(key(1)), Some(1));
    }

    #[test]
    fn does_not_support_tail_region() {
        let mut p = LfuPolicy::new();
        assert!(!p.supports_tail_region());
        p.set_tail_region(128); // must be a harmless no-op
        p.insert(key(1), 1);
        assert_eq!(p.access(key(1)), Some(HitLocation::Main));
    }
}
