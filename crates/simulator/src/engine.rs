//! Trace-driven replay of one application against one cache system.
//!
//! The replay semantics mirror a look-aside cache (Memcached): a GET that
//! misses is followed by a demand fill (SET) of the same key and size, an
//! application SET stores the item unconditionally, and a DELETE removes it.
//! Hit rates are computed over GET requests only, which matches the paper's
//! definition.

use cache_core::store::AllocationMode;
use cache_core::{
    CacheStats, ClassId, GlobalLruCache, PolicyKind, SlabCache, SlabCacheConfig, SlabConfig,
};
use cliffhanger::{Cliffhanger, CliffhangerConfig};
use serde::{Deserialize, Serialize};
use workloads::{Op, Trace};

/// Which Cliffhanger algorithms are enabled (the ablations of Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CliffhangerMode {
    /// Hill climbing and cliff scaling (the full system).
    Full,
    /// Algorithm 1 only.
    HillClimbingOnly,
    /// Algorithms 2–3 only.
    CliffScalingOnly,
    /// Neither (a managed cache with an even, static split — useful as a
    /// sanity baseline).
    Disabled,
}

/// The cache organisation to replay against.
#[derive(Clone, Debug, PartialEq)]
pub enum CacheSystem {
    /// Memcached's default: first-come-first-serve slab allocation with the
    /// given eviction policy (LRU unless stated otherwise).
    Default(PolicyKind),
    /// Per-class byte targets fixed up front (e.g. by the Dynacache solver).
    StaticPlan {
        /// Byte target per slab class.
        class_targets: Vec<u64>,
        /// Eviction policy of every class queue.
        policy: PolicyKind,
    },
    /// A single global LRU over bytes (the log-structured-memory model).
    GlobalLru,
    /// Cliffhanger-managed cache.
    Cliffhanger {
        /// Which algorithms run.
        mode: CliffhangerMode,
        /// Eviction policy of the physical queues.
        policy: PolicyKind,
    },
}

impl CacheSystem {
    /// Shorthand for the default system with LRU.
    pub fn default_lru() -> Self {
        CacheSystem::Default(PolicyKind::Lru)
    }

    /// Shorthand for the full Cliffhanger system with LRU.
    pub fn cliffhanger() -> Self {
        CacheSystem::Cliffhanger {
            mode: CliffhangerMode::Full,
            policy: PolicyKind::Lru,
        }
    }
}

/// Replay parameters shared by every system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplayOptions {
    /// The application's memory reservation in bytes.
    pub reserved_bytes: u64,
    /// Slab-class geometry.
    pub slab: SlabConfig,
    /// Fraction of the trace treated as warm-up; statistics are reset after
    /// it (0.0 replays and counts the whole trace, like the paper).
    pub warmup_fraction: f64,
    /// Number of timeline samples to record (0 disables the timeline).
    pub timeline_samples: usize,
    /// Cliffhanger knobs (ignored by the other systems).
    pub cliffhanger: CliffhangerConfig,
}

impl ReplayOptions {
    /// Options with the given reservation and defaults elsewhere.
    pub fn new(reserved_bytes: u64) -> Self {
        ReplayOptions {
            reserved_bytes,
            slab: SlabConfig::default(),
            warmup_fraction: 0.0,
            timeline_samples: 0,
            cliffhanger: CliffhangerConfig::default(),
        }
    }

    /// Sets the warm-up fraction.
    pub fn with_warmup(mut self, fraction: f64) -> Self {
        self.warmup_fraction = fraction.clamp(0.0, 0.95);
        self
    }

    /// Enables timeline sampling.
    pub fn with_timeline(mut self, samples: usize) -> Self {
        self.timeline_samples = samples;
        self
    }

    fn cliffhanger_config(&self, mode: CliffhangerMode, policy: PolicyKind) -> CliffhangerConfig {
        let mut config = self.cliffhanger.clone();
        config.slab = self.slab.clone();
        config.total_bytes = self.reserved_bytes;
        config.policy = policy;
        // The traces are scaled-down stand-ins for 50 MB+ production
        // reservations; scale the shadow-queue / credit constants with the
        // reservation so their *ratios* match the paper's (see
        // CliffhangerConfig::scaled_for). Explicit overrides in
        // `self.cliffhanger` are preserved only when they differ from the
        // stock defaults.
        let defaults = CliffhangerConfig::default();
        let scaled = CliffhangerConfig::scaled_for(self.reserved_bytes);
        if config.hill_shadow_bytes == defaults.hill_shadow_bytes {
            config.hill_shadow_bytes = scaled.hill_shadow_bytes;
        }
        if config.credit_bytes == defaults.credit_bytes {
            config.credit_bytes = scaled.credit_bytes;
        }
        if config.min_class_bytes == defaults.min_class_bytes {
            config.min_class_bytes = scaled.min_class_bytes;
        }
        if config.cliff_shadow_items == defaults.cliff_shadow_items {
            config.cliff_shadow_items = scaled.cliff_shadow_items;
        }
        match mode {
            CliffhangerMode::Full => {
                config.enable_hill_climbing = true;
                config.enable_cliff_scaling = true;
            }
            CliffhangerMode::HillClimbingOnly => {
                config.enable_hill_climbing = true;
                config.enable_cliff_scaling = false;
            }
            CliffhangerMode::CliffScalingOnly => {
                config.enable_hill_climbing = false;
                config.enable_cliff_scaling = true;
            }
            CliffhangerMode::Disabled => {
                config.enable_hill_climbing = false;
                config.enable_cliff_scaling = false;
            }
        }
        config
    }
}

/// A sample of the system state during replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Trace timestamp (seconds) of the sample.
    pub time: u64,
    /// Hit rate over the interval since the previous sample.
    pub interval_hit_rate: f64,
    /// Cumulative hit rate up to this sample.
    pub cumulative_hit_rate: f64,
    /// Byte target of every slab class (empty for the global-LRU system).
    pub class_targets: Vec<u64>,
    /// Bytes in use per slab class.
    pub class_used: Vec<u64>,
}

/// The result of replaying one application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppRunResult {
    /// Statistics after the warm-up point.
    pub stats: CacheStats,
    /// Per-slab-class statistics after warm-up (empty for global LRU).
    pub class_stats: Vec<CacheStats>,
    /// Final byte target per class (empty for global LRU / default FCFS it
    /// reports the grown targets).
    pub final_class_targets: Vec<u64>,
    /// Timeline samples (empty unless requested).
    pub timeline: Vec<TimelinePoint>,
}

impl AppRunResult {
    /// The overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_ratio().value()
    }
}

enum SystemInstance {
    Slab(SlabCache<()>),
    Global(GlobalLruCache<()>),
    Managed(Box<Cliffhanger<()>>),
}

impl SystemInstance {
    fn build(system: &CacheSystem, options: &ReplayOptions) -> SystemInstance {
        match system {
            CacheSystem::Default(policy) => {
                // Memcached's real page size is 1 MB on 50 MB+ reservations;
                // scale it with the (scaled-down) reservation so the default
                // scheme keeps the same pages-per-application granularity.
                let page_size = (options.reserved_bytes / 48).clamp(8 << 10, 1 << 20);
                SystemInstance::Slab(SlabCache::new(SlabCacheConfig {
                    slab: options.slab.clone(),
                    total_bytes: options.reserved_bytes,
                    policy: *policy,
                    mode: AllocationMode::FirstComeFirstServe { page_size },
                    shadow_bytes: 0,
                    tail_region_items: 0,
                }))
            }
            CacheSystem::StaticPlan {
                class_targets,
                policy,
            } => {
                let mut cache = SlabCache::new(SlabCacheConfig {
                    slab: options.slab.clone(),
                    total_bytes: options.reserved_bytes,
                    policy: *policy,
                    mode: AllocationMode::Managed,
                    shadow_bytes: 0,
                    tail_region_items: 0,
                });
                for (idx, &bytes) in class_targets.iter().enumerate() {
                    if idx < cache.num_classes() {
                        cache.set_class_target(ClassId::new(idx as u32), bytes);
                    }
                }
                SystemInstance::Slab(cache)
            }
            CacheSystem::GlobalLru => {
                SystemInstance::Global(GlobalLruCache::new(options.reserved_bytes))
            }
            CacheSystem::Cliffhanger { mode, policy } => SystemInstance::Managed(Box::new(
                Cliffhanger::new(options.cliffhanger_config(*mode, *policy)),
            )),
        }
    }

    fn get(&mut self, key: cache_core::Key, size: u64) -> bool {
        match self {
            SystemInstance::Slab(c) => c.get(key, size).map(|r| r.result.hit).unwrap_or(false),
            SystemInstance::Global(c) => c.get(key).hit,
            SystemInstance::Managed(c) => c.get(key, size).map(|(_, e)| e.hit).unwrap_or(false),
        }
    }

    fn set(&mut self, key: cache_core::Key, size: u64) {
        match self {
            SystemInstance::Slab(c) => {
                let _ = c.set(key, size, ());
            }
            SystemInstance::Global(c) => {
                let _ = c.set(key, size, ());
            }
            SystemInstance::Managed(c) => {
                let _ = c.set(key, size, ());
            }
        }
    }

    fn delete(&mut self, key: cache_core::Key) {
        match self {
            SystemInstance::Slab(c) => {
                let _ = c.delete(key);
            }
            SystemInstance::Global(c) => {
                let _ = c.delete(key);
            }
            SystemInstance::Managed(c) => {
                let _ = c.delete(key);
            }
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            SystemInstance::Slab(c) => c.stats(),
            SystemInstance::Global(c) => c.stats(),
            SystemInstance::Managed(c) => c.stats(),
        }
    }

    fn class_stats(&self) -> Vec<CacheStats> {
        match self {
            SystemInstance::Slab(c) => c.class_stats(),
            SystemInstance::Global(_) => Vec::new(),
            SystemInstance::Managed(c) => c.class_stats(),
        }
    }

    fn class_targets(&self) -> Vec<u64> {
        match self {
            SystemInstance::Slab(c) => (0..c.num_classes())
                .map(|i| c.class_target(ClassId::new(i as u32)))
                .collect(),
            SystemInstance::Global(_) => Vec::new(),
            SystemInstance::Managed(c) => (0..c.num_classes())
                .map(|i| c.class_target(ClassId::new(i as u32)))
                .collect(),
        }
    }

    fn class_used(&self) -> Vec<u64> {
        match self {
            SystemInstance::Slab(c) => (0..c.num_classes())
                .map(|i| c.class_used(ClassId::new(i as u32)))
                .collect(),
            SystemInstance::Global(c) => vec![c.used_bytes()],
            SystemInstance::Managed(c) => {
                c.class_snapshots().iter().map(|s| s.used_bytes).collect()
            }
        }
    }

    fn reset_stats(&mut self) {
        match self {
            SystemInstance::Slab(c) => c.reset_stats(),
            SystemInstance::Global(c) => c.reset_stats(),
            SystemInstance::Managed(c) => c.reset_stats(),
        }
    }
}

/// Replays a single-application trace against a cache system.
///
/// The trace is expected to contain only one application's requests (use
/// [`workloads::Trace::filter_app`] first); the `app` field of requests is
/// not interpreted here.
pub fn replay_app(trace: &Trace, system: &CacheSystem, options: &ReplayOptions) -> AppRunResult {
    let mut instance = SystemInstance::build(system, options);
    let total = trace.len();
    let warmup_until = ((total as f64) * options.warmup_fraction) as usize;
    let sample_every = total
        .checked_div(options.timeline_samples)
        .map_or(usize::MAX, |every| every.max(1));
    let mut timeline = Vec::new();
    let mut last_stats = CacheStats::new();

    for (idx, request) in trace.iter().enumerate() {
        if idx == warmup_until && warmup_until > 0 {
            instance.reset_stats();
        }
        let size = request.size as u64;
        match request.op {
            Op::Get => {
                let hit = instance.get(request.key, size);
                if !hit {
                    // Demand fill, as in a look-aside cache.
                    instance.set(request.key, size);
                }
            }
            Op::Set => instance.set(request.key, size),
            Op::Delete => instance.delete(request.key),
        }
        if options.timeline_samples > 0 && (idx + 1) % sample_every == 0 {
            let stats = instance.stats();
            let interval_gets = stats.gets.saturating_sub(last_stats.gets);
            let interval_hits = stats.hits.saturating_sub(last_stats.hits);
            timeline.push(TimelinePoint {
                time: request.time,
                interval_hit_rate: if interval_gets == 0 {
                    0.0
                } else {
                    interval_hits as f64 / interval_gets as f64
                },
                cumulative_hit_rate: stats.hit_ratio().value(),
                class_targets: instance.class_targets(),
                class_used: instance.class_used(),
            });
            last_stats = stats;
        }
    }

    AppRunResult {
        stats: instance.stats(),
        class_stats: instance.class_stats(),
        final_class_targets: instance.class_targets(),
        timeline,
    }
}

/// Convenience: replay the same trace under several systems and return the
/// results in order.
pub fn replay_many(
    trace: &Trace,
    systems: &[CacheSystem],
    options: &ReplayOptions,
) -> Vec<AppRunResult> {
    systems
        .iter()
        .map(|s| replay_app(trace, s, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{AppProfile, Phase, SizeDistribution};

    fn zipf_trace(keys: u64, requests: u64) -> Trace {
        let profile = AppProfile::simple(
            1,
            "engine-test",
            1.0,
            4 << 20,
            Phase::zipf(keys, 1.0, SizeDistribution::Fixed(100)),
        );
        Trace::from_requests(profile.generate(requests, 3_600, 7))
    }

    #[test]
    fn replay_produces_hits_once_warm() {
        let trace = zipf_trace(2_000, 30_000);
        let options = ReplayOptions::new(2 << 20);
        let result = replay_app(&trace, &CacheSystem::default_lru(), &options);
        assert!(result.stats.gets > 0);
        assert!(
            result.hit_rate() > 0.5,
            "a comfortable cache should hit most of a Zipf stream, got {:.3}",
            result.hit_rate()
        );
        assert!(!result.class_stats.is_empty());
    }

    #[test]
    fn warmup_resets_statistics() {
        let trace = zipf_trace(2_000, 30_000);
        let cold = replay_app(
            &trace,
            &CacheSystem::default_lru(),
            &ReplayOptions::new(2 << 20),
        );
        let warm = replay_app(
            &trace,
            &CacheSystem::default_lru(),
            &ReplayOptions::new(2 << 20).with_warmup(0.3),
        );
        assert!(warm.stats.gets < cold.stats.gets);
        assert!(warm.hit_rate() >= cold.hit_rate());
    }

    #[test]
    fn all_systems_replay_without_error() {
        let trace = zipf_trace(3_000, 20_000);
        let options = ReplayOptions::new(1 << 20);
        let systems = [
            CacheSystem::default_lru(),
            CacheSystem::Default(PolicyKind::Facebook),
            CacheSystem::GlobalLru,
            CacheSystem::StaticPlan {
                class_targets: vec![1 << 20; options.slab.num_classes()],
                policy: PolicyKind::Lru,
            },
            CacheSystem::cliffhanger(),
            CacheSystem::Cliffhanger {
                mode: CliffhangerMode::HillClimbingOnly,
                policy: PolicyKind::Lru,
            },
            CacheSystem::Cliffhanger {
                mode: CliffhangerMode::CliffScalingOnly,
                policy: PolicyKind::Facebook,
            },
        ];
        let results = replay_many(&trace, &systems, &options);
        assert_eq!(results.len(), systems.len());
        for (system, result) in systems.iter().zip(&results) {
            assert!(result.stats.gets > 0, "no GETs recorded for {system:?}");
            assert!(result.hit_rate() > 0.0, "no hits at all for {system:?}");
        }
    }

    #[test]
    fn more_memory_never_hurts_much() {
        let trace = zipf_trace(10_000, 30_000);
        let small = replay_app(
            &trace,
            &CacheSystem::default_lru(),
            &ReplayOptions::new(256 << 10),
        );
        let large = replay_app(
            &trace,
            &CacheSystem::default_lru(),
            &ReplayOptions::new(4 << 20),
        );
        assert!(large.hit_rate() >= small.hit_rate());
    }

    #[test]
    fn timeline_sampling_records_allocations() {
        let trace = zipf_trace(5_000, 20_000);
        let options = ReplayOptions::new(1 << 20).with_timeline(20);
        let result = replay_app(&trace, &CacheSystem::cliffhanger(), &options);
        assert!(
            result.timeline.len() >= 18,
            "got {} samples",
            result.timeline.len()
        );
        let first = result.timeline.first().unwrap();
        let last = result.timeline.last().unwrap();
        assert!(last.time >= first.time);
        assert_eq!(first.class_targets.len(), options.slab.num_classes());
        // Cumulative hit rate should improve as the cache warms.
        assert!(last.cumulative_hit_rate >= first.cumulative_hit_rate);
    }

    #[test]
    fn deletes_are_honoured() {
        use cache_core::{AppId, Key};
        use workloads::Request;
        let mut trace = Trace::new();
        trace.push(Request::set(AppId::new(1), Key::new(1), 100, 0));
        trace.push(Request::get(AppId::new(1), Key::new(1), 100, 1));
        trace.push(Request {
            app: AppId::new(1),
            key: Key::new(1),
            size: 100,
            op: Op::Delete,
            time: 2,
        });
        trace.push(Request::get(AppId::new(1), Key::new(1), 100, 3));
        let result = replay_app(
            &trace,
            &CacheSystem::default_lru(),
            &ReplayOptions::new(1 << 20),
        );
        assert_eq!(result.stats.gets, 2);
        assert_eq!(result.stats.hits, 1);
        assert_eq!(result.stats.misses, 1);
    }
}
