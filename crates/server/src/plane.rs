//! The shared-nothing data plane: shards fused to event loops.
//!
//! Every cache shard is *owned* by exactly one reactor event loop
//! (`owner(shard) = shard % loops`); the owning loop holds the shard's
//! per-tenant [`Engine`]s by value — no mutex, no `RwLock`, no `Arc`
//! refcount on the request path. A connection routes each key by hash in
//! [`crate::conn`] before touching any engine:
//!
//! * keys owned by the connection's own loop execute immediately on the
//!   loop thread (the fast path — zero shared locks);
//! * keys owned by another loop are forwarded as a [`DataOp`] message over
//!   that loop's wakeup mailbox; the connection parks (stops parsing) until
//!   the [`LoopMsg::DataReply`] comes back, preserving per-connection
//!   program order while its event loop keeps serving every sibling.
//!
//! Cross-cutting operations never touch the loops' owned state directly.
//! A single *control thread* — the only blocking coordinator in the server
//! — serialises them: `stats` fan-out, tenant `flush_all`, `app_create`
//! carve-outs, and every [`ShardRebalancer`]/[`TenantArbiter`] budget
//! transfer become [`ControlMsg`]s answered by the owning loops, so admin
//! commands no longer head-of-line-block the loop that received them.
//!
//! # Invariants
//!
//! * **Budget conservation** — the control thread is the *sole* budget
//!   mutator. Every transfer is shrink-then-grow: the winner is granted
//!   only bytes the donor engine actually released (a donor pinned at its
//!   slab-class floors contributes nothing), so the summed live budgets
//!   never exceed `total_bytes`.
//! * **No blocking loops** — event loops never wait on a lock or a reply;
//!   only connections park. The control thread blocks on loop replies, and
//!   loops answer control messages from their mailboxes, so the wait graph
//!   is acyclic (control → loops, never loops → control).
//! * **Tenant-table generation** — the name table used by the `app`
//!   command is a per-loop copy refreshed when the shared generation
//!   counter moves. The control thread bumps the generation only *after*
//!   every owning loop has built the new tenant's engines, so a session
//!   can never resolve a tenant whose cells do not exist yet.

use crate::backend::{BackendConfig, BackendMode};
use crate::engine::{even_split, route_key, weighted_split, Engine};
use crate::hotkey::{plan_round, HotKeyCount, HotLoopState, HotShared, PromotedEntry};
use crate::protocol::StatsFormat;
use crate::reactor::{ConnTelemetry, Mailbox};
use crate::stats::{
    build_document, render_json, render_prom, render_stats, BalanceCounters, EngineStat,
    HotKeyEntryDoc, HotKeysDoc, LoopTelemetry, ObservedPlane, PlaneStats, StatsSnapshot,
    WireCounts,
};
use bytes::Bytes;
use cache_core::{Key, TenantDirectory};
use cliffhanger::{
    EventSink, ShardRebalancer, ShardSample, TenantArbiter, TenantSample, TransferEvent,
};
use parking_lot::Mutex;
use profiler::{MrcSnapshot, OnlineMrc};
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};
use telemetry::{EventKind, Histogram, Journal, SeriesSample, TimeSeries};

/// Ring capacity of the control-plane flight recorder: enough to hold a
/// long tail of balancing history at a few hundred bytes per event.
const JOURNAL_CAPACITY: usize = 1024;

/// Width of one stats-history bucket: per-loop cumulative counters are
/// sampled into 1-second intervals and differenced into rates at snapshot.
const HISTORY_INTERVAL_US: u64 = 1_000_000;

/// Retained history buckets per loop (and in the merged exposition): about
/// a minute of trajectory per scrape.
const HISTORY_WINDOWS: usize = 64;

/// Slow-op journal sampling: record the first slow op and every 64th after
/// it (per loop), so a pathological threshold cannot flood the ring.
const SLOW_OP_SAMPLE: u64 = 64;

/// Hottest tracked keys exposed in the stats document; the tail of a wide
/// tracker window is sampling noise.
const HOT_KEYS_EXPOSED: usize = 32;

/// Everything an event loop can find in its mailbox.
pub(crate) enum LoopMsg {
    /// A freshly accepted connection from the acceptor.
    Conn(TcpStream),
    /// A data operation forwarded by another loop (or a synchronous
    /// [`PlaneHandle`] caller) for a shard this loop owns.
    Data(DataOp),
    /// The answer to a [`DataOp`] this loop forwarded for one of its
    /// connections.
    DataReply {
        /// The origin connection's token on this loop.
        token: u64,
        /// The connection's op sequence number the reply answers.
        seq: u64,
        /// Multi-get slot index (0 for single-key ops).
        slot: usize,
        /// The operation's result.
        outcome: DataOutcome,
    },
    /// The control thread finished an admin command a connection forwarded.
    AdminDone {
        /// The origin connection's token on this loop.
        token: u64,
        /// The connection's op sequence number the reply answers.
        seq: u64,
        /// The rendered result.
        result: AdminResult,
    },
    /// A request from the control thread against this loop's owned state.
    Control(ControlMsg),
    /// A hot-key replica fill from the owning loop: the value a forwarded
    /// GET just read, plus the version it carried at read time. Queued
    /// *before* the matching [`LoopMsg::DataReply`] on the same FIFO
    /// mailbox, so a fill can never be overtaken by a later invalidation.
    HotFill {
        tenant: usize,
        id: Key,
        key: Bytes,
        flags: u32,
        data: Bytes,
        version: u64,
    },
    /// Eager replica invalidation broadcast by the owning loop after a
    /// write to a promoted key. Reclaims memory promptly; correctness is
    /// carried by the version table, not by this message.
    HotInvalidate { tenant: usize, id: Key },
    /// Tenant-wide replica purge broadcast by the control thread during a
    /// tenant `flush_all`. Like [`LoopMsg::HotInvalidate`], eager memory
    /// reclaim only: the control thread's version-table `bump_all` before
    /// the flush ack is what stops stale replicas from serving.
    HotFlushTenant { tenant: usize },
}

/// One key's worth of work for the loop that owns `shard`.
pub(crate) struct DataOp {
    pub(crate) shard: usize,
    pub(crate) tenant: usize,
    pub(crate) id: Key,
    pub(crate) key: Bytes,
    pub(crate) verb: DataVerb,
    pub(crate) reply: DataReplyTo,
    /// When the issuing side created the op. The owning loop's
    /// remote-latency histogram measures from here, so forwarded ops are
    /// charged their mailbox queueing delay, not just engine time.
    pub(crate) enqueued: Instant,
    /// The issuing loop wants a [`LoopMsg::HotFill`] alongside the reply
    /// (a read-through miss on a promoted key's replica).
    pub(crate) hot_fill: bool,
}

/// The operation itself.
pub(crate) enum DataVerb {
    Get,
    Set { flags: u32, data: Bytes },
    Add { flags: u32, data: Bytes },
    Replace { flags: u32, data: Bytes },
    Delete,
}

/// Where a [`DataOp`]'s result goes.
pub(crate) enum DataReplyTo {
    /// Back to the loop whose connection issued it.
    Conn {
        origin: usize,
        token: u64,
        seq: u64,
        slot: usize,
    },
    /// Straight to a blocked [`PlaneHandle`] caller.
    Sync(Sender<DataOutcome>),
}

/// A [`DataOp`]'s result.
#[derive(Clone, Debug)]
pub(crate) enum DataOutcome {
    /// GET: `(flags, data)` on an exact hit.
    Value(Option<(u32, Bytes)>),
    /// Store/delete verbs: success flag.
    Flag(bool),
}

/// Control-thread requests against one loop's owned engines. Replies go
/// over plain `mpsc` senders — the control thread is the only receiver and
/// the only thread that ever blocks on them.
pub(crate) enum ControlMsg {
    /// Snapshot every owned engine's stats and the loop's counters.
    Snapshot { reply: Sender<LoopSnapshot> },
    /// Release budget from one engine (evicting as needed); reply whether
    /// the bytes were actually released.
    Shrink {
        shard: usize,
        tenant: usize,
        bytes: u64,
        reply: Sender<bool>,
    },
    /// Grant budget to one engine (always succeeds on managed engines).
    Grow {
        shard: usize,
        tenant: usize,
        bytes: u64,
    },
    /// Replace one engine with a fresh build at the given budget (tenant
    /// `flush_all`). Wire counters survive, exactly as they did when the
    /// engine lived behind a mutex in a persistent cell.
    Rebuild {
        shard: usize,
        tenant: usize,
        budget: u64,
        reply: Sender<()>,
    },
    /// `app_create` carve-out: shrink the asked (shard, tenant) engines,
    /// then bring up the new tenant's engine on every owned shard with the
    /// bytes actually carved there. Replies the granted asks.
    CarveAdd {
        /// The new tenant's name (not yet in the loops' tables — the
        /// generation bump that publishes it happens after every carve).
        name: String,
        asks: Vec<(usize, usize, u64)>,
        reply: Sender<Vec<(usize, usize, u64)>>,
    },
}

/// What one loop reports to the control thread.
pub(crate) struct LoopSnapshot {
    pub(crate) loop_index: usize,
    /// `(global shard index, per-tenant engine stats)` for owned shards.
    pub(crate) engines: Vec<(usize, Vec<EngineStat>)>,
    pub(crate) local_ops: u64,
    pub(crate) remote_in: u64,
    pub(crate) remote_out: u64,
    pub(crate) admin_forwards: u64,
    /// Service times of ops this loop ran for its own connections.
    pub(crate) local_latency: Histogram,
    /// Queue + service times of ops forwarded here by sibling loops.
    pub(crate) remote_latency: Histogram,
    /// Ops that exceeded the configured slow-op threshold on this loop.
    pub(crate) slow_ops: u64,
    /// Per-tenant online MRC samples over this loop's shard partition
    /// (empty when profiling is off).
    pub(crate) mrc: Vec<MrcSnapshot>,
    /// Per-tenant counter history buckets recorded by this loop.
    pub(crate) history: TimeSeries,
    /// This loop's sampled hot-key window tallies (empty when the feature
    /// is off).
    pub(crate) hot_keys: Vec<HotKeyCount>,
    /// GETs this loop served from its promoted-key replica cache.
    pub(crate) replica_hits: u64,
    /// Replica fills this loop accepted from owning loops.
    pub(crate) replica_fills: u64,
    /// Invalidation broadcasts this loop received.
    pub(crate) hot_invalidations: u64,
    /// Replica-served GETs by `(shard, tenant, count)`, so snapshot
    /// assembly can fold them into the owning cell's wire counters — a
    /// promoted key's dominant traffic must not vanish from tenant and
    /// shard hit-ratio stats the moment it stops crossing loops.
    pub(crate) replica_hit_cells: Vec<(usize, usize, u64)>,
}

/// Requests to the control thread.
pub(crate) enum CtrlReq {
    /// A loop's op counter crossed a balancing interval.
    Round { arbitrate: bool },
    /// Run a round synchronously ([`PlaneHandle::rebalance_now`] etc.).
    RoundSync { arbitrate: bool, done: Sender<()> },
    /// A loop's op counter crossed the hot-key round interval.
    HotRound,
    /// Run a hot-key promotion round synchronously
    /// ([`PlaneHandle::hot_round_now`]).
    HotRoundSync { done: Sender<()> },
    /// An admin command forwarded off a connection (or a sync caller).
    Admin { op: AdminOp, reply: AdminReply },
    /// Exit the control thread.
    Shutdown,
}

/// The admin commands the control thread serialises.
pub(crate) enum AdminOp {
    Stats { format: StatsFormat },
    FlushTenant { tenant: usize },
    CreateTenant { name: String, weight: u64 },
    AppList,
}

/// Where an admin result goes.
pub(crate) enum AdminReply {
    /// Back to the loop whose connection issued it (as
    /// [`LoopMsg::AdminDone`]).
    Conn { origin: usize, token: u64, seq: u64 },
    /// Straight to a blocked [`PlaneHandle`] caller.
    Sync(Sender<AdminResult>),
}

/// An admin command's result.
pub(crate) enum AdminResult {
    Stats(Vec<(String, String)>),
    /// A machine-readable stats payload (`stats json` / `stats prom`),
    /// already rendered to its wire text.
    Blob(String),
    Flushed,
    Created(Result<usize, String>),
    Apps(Vec<(String, u64, u64)>),
}

/// The master tenant table. The control thread is the only writer; loops
/// copy the name table out when the generation counter moves, and slow
/// readers ([`PlaneHandle`] accessors, `stats` assembly) take the lock.
/// The request fast path never touches it.
pub(crate) struct RosterMaster {
    pub(crate) directory: TenantDirectory,
    pub(crate) weights: Vec<u64>,
    /// Per-(tenant, shard) budgets at construction/creation time; the
    /// flush-restore point.
    pub(crate) initial_budgets: Vec<Vec<u64>>,
    /// Live per-(tenant, shard) byte budgets.
    pub(crate) budgets: Vec<Vec<u64>>,
}

impl RosterMaster {
    pub(crate) fn tenant_budgets(&self) -> Vec<u64> {
        self.budgets
            .iter()
            .map(|per_shard| per_shard.iter().sum())
            .collect()
    }

    pub(crate) fn shard_budgets(&self, shards: usize) -> Vec<u64> {
        (0..shards)
            .map(|s| self.budgets.iter().map(|per_shard| per_shard[s]).sum())
            .collect()
    }
}

/// State shared by the loops, the control thread and the [`PlaneHandle`].
pub(crate) struct PlaneShared {
    pub(crate) config: BackendConfig,
    pub(crate) shards: usize,
    pub(crate) loops: usize,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) ctrl: Sender<CtrlReq>,
    /// Bumped by the control thread after every tenant-table change.
    pub(crate) generation: AtomicU64,
    pub(crate) roster: Mutex<RosterMaster>,
    /// The control-plane flight recorder. Lock-free claims; writers are
    /// control-plane actors only (never the per-request fast path).
    pub(crate) journal: Arc<Journal>,
    /// Slow-op threshold in nanoseconds; 0 disables the slow-op log.
    pub(crate) slow_op_nanos: u64,
    /// Plane boot instant: the monotonic zero for journal timestamps,
    /// history bucket indices and `uptime_s`.
    pub(crate) started: Instant,
    /// Wall-clock at boot, for anchoring monotonic offsets to real time.
    pub(crate) start_unix_us: u64,
    /// Spatial-sampling shift for online MRC profiling (`None` = off).
    pub(crate) mrc_shift: Option<u32>,
    /// Hot-key subsystem shared state; `None` when the feature is off, so
    /// the request fast path pays exactly one `Option` discriminant check.
    pub(crate) hot: Option<HotShared>,
    rebalance_pending: AtomicBool,
    arbitrate_pending: AtomicBool,
}

impl PlaneShared {
    /// The event loop that owns a shard.
    pub(crate) fn owner_of(&self, shard: usize) -> usize {
        shard % self.loops
    }
}

/// The [`EventSink`] installed on every managed engine: tags the library's
/// anonymous decision events with the engine's (shard, tenant) identity and
/// appends them to the flight recorder. Transfers are not journalled here —
/// the balancers run in the control thread, which records only the
/// transfers it actually applied.
struct EngineSink {
    journal: Arc<Journal>,
    shard: usize,
    tenant: String,
}

impl EventSink for EngineSink {
    fn scaler_ratio(&self, class: u32, ratio: f64) {
        self.journal.record(EventKind::ScalerRatio {
            shard: self.shard,
            tenant: self.tenant.clone(),
            class,
            ratio,
        });
    }

    fn free_pool_grant(&self, class: u32, bytes: u64) {
        self.journal.record(EventKind::FreePoolGrant {
            shard: self.shard,
            tenant: self.tenant.clone(),
            class,
            bytes,
        });
    }
}

/// Builds an engine for `(shard, tenant)` with the flight-recorder sink
/// installed (a no-op on plain engines).
fn build_engine(shared: &PlaneShared, shard: usize, tenant: &str, budget: u64) -> Engine {
    let mut engine = Engine::build(&shared.config, budget);
    engine.set_event_sink(Arc::new(EngineSink {
        journal: Arc::clone(&shared.journal),
        shard,
        tenant: tenant.to_string(),
    }));
    engine
}

/// One owned engine and its wire counters — plain fields, touched only by
/// the owning loop thread.
struct OwnedEngine {
    engine: Engine,
    gets: u64,
    hits: u64,
    sets: u64,
    deletes: u64,
}

impl OwnedEngine {
    fn new(engine: Engine) -> OwnedEngine {
        OwnedEngine {
            engine,
            gets: 0,
            hits: 0,
            sets: 0,
            deletes: 0,
        }
    }

    fn wire_counts(&self) -> WireCounts {
        WireCounts {
            gets: self.gets,
            hits: self.hits,
            misses: self.gets.saturating_sub(self.hits),
            sets: self.sets,
            deletes: self.deletes,
        }
    }
}

/// One owned shard: an engine per tenant.
struct OwnedShard {
    global: usize,
    cells: Vec<OwnedEngine>,
}

/// The loop-thread-owned half of the data plane: the engines of the shards
/// this loop owns, the loop's copy of the tenant name table, its telemetry
/// counters and its outbound message queues.
pub(crate) struct LoopState {
    pub(crate) index: usize,
    pub(crate) shared: Arc<PlaneShared>,
    /// Global shard index → position in `owned` (None = another loop's).
    slots: Vec<Option<usize>>,
    owned: Vec<OwnedShard>,
    /// Loop-local tenant name table (the `app` command's view), refreshed
    /// from the roster when the generation counter moves.
    tenants: Vec<String>,
    generation_seen: u64,
    /// Data ops executed for this loop's own connections.
    pub(crate) local_ops: u64,
    /// Data ops executed on behalf of another loop.
    pub(crate) remote_in: u64,
    /// Data ops forwarded to other loops.
    pub(crate) remote_out: u64,
    /// Admin commands forwarded to the control thread.
    pub(crate) admin_forwards: u64,
    /// Service times of ops run for this loop's own connections (ns).
    local_latency: Histogram,
    /// Queue + service times of ops forwarded here by siblings (ns).
    remote_latency: Histogram,
    /// Ops over the slow-op threshold (0 threshold = never counted).
    slow_ops: u64,
    ops: u64,
    rebalance_interval: u64,
    arbitrate_interval: u64,
    /// Per-tenant online MRC estimators over this loop's shard partition
    /// (empty when profiling is off or the loop owns no shards).
    mrc: Vec<OnlineMrc>,
    /// Per-tenant counter history, bucketed into wall-clock intervals.
    history: TimeSeries,
    /// Per-target-loop outbound batches, flushed once per readiness pass.
    outbound: Vec<Vec<LoopMsg>>,
    /// Loop-local hot-key state (tracker, promoted-set view, replica
    /// cache); `None` when the feature is off.
    hot: Option<HotLoopState>,
    hot_interval: u64,
    /// Replica-served GETs tallied by `(shard, tenant)`; merged into the
    /// owning cell's wire counters at snapshot. Promoted keys only, so
    /// the map stays a handful of entries.
    replica_tenant_hits: HashMap<(usize, usize), u64>,
}

impl LoopState {
    fn new(index: usize, shared: Arc<PlaneShared>, initial_budgets: &[Vec<u64>]) -> LoopState {
        let tenants = shared.roster.lock().directory.names().to_vec();
        let owned: Vec<OwnedShard> = (index..shared.shards)
            .step_by(shared.loops)
            .map(|s| OwnedShard {
                global: s,
                cells: initial_budgets
                    .iter()
                    .zip(&tenants)
                    .map(|(per_shard, name)| {
                        OwnedEngine::new(build_engine(&shared, s, name, per_shard[s]))
                    })
                    .collect(),
            })
            .collect();
        let mut slots = vec![None; shared.shards];
        for (i, shard) in owned.iter().enumerate() {
            slots[shard.global] = Some(i);
        }
        let loops = shared.loops as u64;
        let mrc = match shared.mrc_shift {
            Some(shift) if !owned.is_empty() => {
                let share = owned.len() as f64 / shared.shards as f64;
                tenants
                    .iter()
                    .map(|_| OnlineMrc::with_population_share(shift, share))
                    .collect()
            }
            _ => Vec::new(),
        };
        LoopState {
            index,
            slots,
            owned,
            tenants,
            generation_seen: shared.generation.load(Ordering::Acquire),
            local_ops: 0,
            remote_in: 0,
            remote_out: 0,
            admin_forwards: 0,
            local_latency: Histogram::new(),
            remote_latency: Histogram::new(),
            slow_ops: 0,
            ops: 0,
            rebalance_interval: (shared.config.rebalance.interval_requests / loops).max(1),
            arbitrate_interval: (shared.config.tenant_balance.interval_requests / loops).max(1),
            mrc,
            history: TimeSeries::new(HISTORY_INTERVAL_US, HISTORY_WINDOWS),
            outbound: (0..shared.loops).map(|_| Vec::new()).collect(),
            hot: shared
                .hot
                .as_ref()
                .map(|hot| HotLoopState::new(&hot.config)),
            hot_interval: (shared.config.hot_key.interval_requests / loops).max(1),
            replica_tenant_hits: HashMap::new(),
            shared,
        }
    }

    /// Re-copies the tenant name table if the control thread changed it.
    /// One relaxed atomic load on the no-change path. Also refreshes the
    /// loop's view of the promoted hot-key set (its own generation
    /// counter, same protocol).
    pub(crate) fn refresh_tenants(&mut self) {
        if let (Some(hot_shared), Some(hot)) = (self.shared.hot.as_ref(), self.hot.as_mut()) {
            hot.refresh(
                hot_shared.generation.load(Ordering::Acquire),
                &hot_shared.promoted,
            );
        }
        let generation = self.shared.generation.load(Ordering::Acquire);
        if generation != self.generation_seen {
            self.tenants = self.shared.roster.lock().directory.names().to_vec();
            self.generation_seen = generation;
            if let Some(shift) = self.shared.mrc_shift {
                if !self.owned.is_empty() {
                    let share = self.owned.len() as f64 / self.shared.shards as f64;
                    while self.mrc.len() < self.tenants.len() {
                        self.mrc
                            .push(OnlineMrc::with_population_share(shift, share));
                    }
                }
            }
        }
    }

    /// Samples the loop's cumulative per-tenant counters into the history
    /// ring. Called once per readiness pass; recording into the current
    /// interval bucket overwrites in place, so the cost is an `Instant`
    /// read plus a per-owned-cell sum.
    pub(crate) fn observe(&mut self) {
        let now_us = self.shared.started.elapsed().as_micros() as u64;
        let mut columns = vec![SeriesSample::default(); self.tenants.len()];
        for shard in &self.owned {
            for (tenant, cell) in shard.cells.iter().enumerate() {
                let Some(column) = columns.get_mut(tenant) else {
                    continue;
                };
                column.gets += cell.gets;
                column.hits += cell.hits;
                column.evictions += cell.engine.stats().evictions;
            }
        }
        // Replica-served GETs for keys other loops own: without these a
        // promoted key's traffic would vanish from this loop's trajectory.
        for (&(_, tenant), &count) in &self.replica_tenant_hits {
            if let Some(column) = columns.get_mut(tenant) {
                column.gets += count;
                column.hits += count;
            }
        }
        self.history.record(now_us, columns);
    }

    /// The loop-local tenant name table.
    pub(crate) fn tenant_names(&self) -> &[String] {
        &self.tenants
    }

    /// Resolves an `app` name against the loop-local table.
    pub(crate) fn tenant_lookup(&self, name: &str) -> Option<usize> {
        self.tenants.iter().position(|n| n == name)
    }

    /// Routes a key: `Ok(local slot)` when this loop owns the shard,
    /// `Err(owner loop)` otherwise.
    pub(crate) fn route(&self, tenant: usize, key: &[u8]) -> (usize, Key, Result<usize, usize>) {
        let (shard, id) = route_key(tenant, key, self.shared.shards);
        match self.slots[shard] {
            Some(slot) => (shard, id, Ok(slot)),
            None => (shard, id, Err(self.shared.owner_of(shard))),
        }
    }

    /// Executes one data op against an owned engine. The zero-lock fast
    /// path: a slot lookup, plain-field counter bumps and the engine call.
    pub(crate) fn apply(
        &mut self,
        slot: usize,
        tenant: usize,
        id: Key,
        key: &[u8],
        verb: &DataVerb,
    ) -> DataOutcome {
        // Online MRC sampling: when profiling is off the vec is empty and
        // this is a single bounds-checked lookup; when on, a hash + compare
        // for unsampled keys.
        if matches!(verb, DataVerb::Get) {
            if let Some(estimator) = self.mrc.get_mut(tenant) {
                estimator.record(id);
            }
            // Hot-key detection rides the same sampled GET stream.
            if let Some(hot) = self.hot.as_mut() {
                hot.tracker.record(tenant, id, key);
            }
        }
        let shard = &mut self.owned[slot];
        let Some(cell) = shard.cells.get_mut(tenant) else {
            // A tenant index this loop has not materialised (impossible by
            // the generation protocol; never panic the loop over it).
            return match verb {
                DataVerb::Get => DataOutcome::Value(None),
                _ => DataOutcome::Flag(false),
            };
        };
        // Whether a mutating engine call actually ran: a failed `add` on a
        // present key or a `delete` of a missing key never touches the
        // store, so it must not bump the version slot (and, for promoted
        // keys, broadcast invalidations that evict perfectly valid
        // replicas). A `set` that ran but was not admitted still counts —
        // admission failure may have displaced the old value.
        let mut touched = false;
        let outcome = match verb {
            DataVerb::Get => {
                cell.gets += 1;
                match cell.engine.wire_get(id, key) {
                    Some(found) => {
                        cell.hits += 1;
                        DataOutcome::Value(Some(found))
                    }
                    None => DataOutcome::Value(None),
                }
            }
            DataVerb::Set { flags, data } => {
                cell.sets += 1;
                touched = true;
                DataOutcome::Flag(cell.engine.wire_set(id, key, *flags, data.clone()))
            }
            DataVerb::Add { flags, data } => {
                if cell.engine.contains_exact(id, key) {
                    DataOutcome::Flag(false)
                } else {
                    cell.sets += 1;
                    touched = true;
                    DataOutcome::Flag(cell.engine.wire_set(id, key, *flags, data.clone()))
                }
            }
            DataVerb::Replace { flags, data } => {
                if !cell.engine.contains_exact(id, key) {
                    DataOutcome::Flag(false)
                } else {
                    cell.sets += 1;
                    touched = true;
                    DataOutcome::Flag(cell.engine.wire_set(id, key, *flags, data.clone()))
                }
            }
            DataVerb::Delete => {
                cell.deletes += 1;
                if !cell.engine.contains_exact(id, key) {
                    DataOutcome::Flag(false)
                } else {
                    touched = true;
                    DataOutcome::Flag(cell.engine.delete(id))
                }
            }
        };
        if touched && self.shared.hot.is_some() {
            self.note_mutation(tenant, id);
        }
        self.tick();
        outcome
    }

    /// Hot-key bookkeeping for a mutation this (owning) loop just applied:
    /// bump the key's version slot *before* the ack can be observed, and —
    /// if the key is promoted — broadcast eager invalidations to every
    /// sibling loop. The version bump alone carries correctness; a stale
    /// promoted-set view here only delays memory reclaim.
    fn note_mutation(&mut self, tenant: usize, id: Key) {
        let Some(hot_shared) = self.shared.hot.as_ref() else {
            return;
        };
        hot_shared.versions.bump(tenant, id);
        let promoted = self
            .hot
            .as_ref()
            .map(|hot| hot.is_promoted(tenant, id))
            .unwrap_or(false);
        if promoted {
            for target in 0..self.shared.loops {
                if target != self.index {
                    self.forward(target, LoopMsg::HotInvalidate { tenant, id });
                }
            }
        }
    }

    /// Serves a GET for a *remote-owned* key from the promoted-key replica
    /// cache, if possible. A hit is a local answer (no mailbox round-trip);
    /// the tracker still records it so a promoted key's traffic keeps it
    /// hot instead of decaying out of the window the moment it stops
    /// crossing loops, and the hit is tallied against the owning
    /// `(shard, tenant)` cell (merged at snapshot) plus this loop's MRC
    /// estimator, so promotion does not make the key's traffic vanish
    /// from hit-ratio stats or the balancer signals derived from them.
    pub(crate) fn replica_get(
        &mut self,
        shard: usize,
        tenant: usize,
        id: Key,
        key: &[u8],
    ) -> Option<(u32, Bytes)> {
        let hot_shared = self.shared.hot.as_ref()?;
        let hot = self.hot.as_mut()?;
        let found = hot.replica_get(tenant, id, key, &hot_shared.versions);
        if found.is_some() {
            hot.tracker.record(tenant, id, key);
            if let Some(estimator) = self.mrc.get_mut(tenant) {
                estimator.record(id);
            }
            *self.replica_tenant_hits.entry((shard, tenant)).or_insert(0) += 1;
            self.local_ops += 1;
            self.tick();
        }
        found
    }

    /// Whether a forwarded GET for `(tenant, id)` should ask the owner for
    /// a replica fill (the key is promoted in this loop's view).
    pub(crate) fn wants_hot_fill(&self, tenant: usize, id: Key) -> bool {
        self.hot
            .as_ref()
            .map(|hot| hot.is_promoted(tenant, id))
            .unwrap_or(false)
    }

    /// Installs a replica fill an owning loop sent us.
    pub(crate) fn hot_fill(
        &mut self,
        tenant: usize,
        id: Key,
        key: Bytes,
        flags: u32,
        data: Bytes,
        version: u64,
    ) {
        if let Some(hot) = self.hot.as_mut() {
            hot.fill(tenant, id, key, flags, data, version);
        }
    }

    /// Drops a replica entry an owning loop invalidated.
    pub(crate) fn hot_invalidate(&mut self, tenant: usize, id: Key) {
        if let Some(hot) = self.hot.as_mut() {
            hot.invalidate(tenant, id);
        }
    }

    /// Drops every replica entry of a tenant the control thread flushed.
    pub(crate) fn hot_flush_tenant(&mut self, tenant: usize) {
        if let Some(hot) = self.hot.as_mut() {
            hot.purge_tenant(tenant);
        }
    }

    /// [`LoopState::apply`] for the loop's own connections: counts the op
    /// as local and records its service time in the local histogram.
    pub(crate) fn apply_local(
        &mut self,
        slot: usize,
        tenant: usize,
        id: Key,
        key: &[u8],
        verb: &DataVerb,
    ) -> DataOutcome {
        let started = Instant::now();
        let outcome = self.apply(slot, tenant, id, key, verb);
        self.local_ops += 1;
        let nanos = started.elapsed().as_nanos() as u64;
        self.local_latency.record(nanos);
        self.note_slow(nanos, "local");
        outcome
    }

    /// Counts (and samples into the journal) an op over the slow-op
    /// threshold. Off the fast path when the threshold is 0 (one compare).
    fn note_slow(&mut self, nanos: u64, class: &str) {
        let threshold = self.shared.slow_op_nanos;
        if threshold == 0 || nanos < threshold {
            return;
        }
        self.slow_ops += 1;
        if self.slow_ops % SLOW_OP_SAMPLE == 1 {
            self.shared.journal.record(EventKind::SlowOp {
                loop_index: self.index,
                class: class.to_string(),
                micros: nanos / 1_000,
            });
        }
    }

    /// The idle reaper closed a connection: leave a journal trace.
    pub(crate) fn note_idle_reap(&self) {
        self.shared.journal.record(EventKind::IdleReap {
            loop_index: self.index,
        });
    }

    /// Counts one executed data op and nudges the control thread when a
    /// balancing interval elapses. The pending flags collapse concurrent
    /// triggers from many loops into one queued round.
    fn tick(&mut self) {
        let config = &self.shared.config;
        let rebalance = config.rebalance.enabled
            && self.shared.shards > 1
            && config.mode != BackendMode::Default;
        let arbitrate = config.tenant_balance.enabled
            && self.tenants.len() > 1
            && config.mode != BackendMode::Default;
        let hot = self.shared.hot.is_some();
        if !rebalance && !arbitrate && !hot {
            return;
        }
        self.ops += 1;
        if hot && self.ops % self.hot_interval == 0 {
            if let Some(hot_shared) = self.shared.hot.as_ref() {
                if !hot_shared.round_pending.swap(true, Ordering::AcqRel) {
                    let _ = self.shared.ctrl.send(CtrlReq::HotRound);
                }
            }
        }
        if rebalance
            && self.ops % self.rebalance_interval == 0
            && !self.shared.rebalance_pending.swap(true, Ordering::AcqRel)
        {
            let _ = self.shared.ctrl.send(CtrlReq::Round { arbitrate: false });
        }
        if arbitrate
            && self.ops % self.arbitrate_interval == 0
            && !self.shared.arbitrate_pending.swap(true, Ordering::AcqRel)
        {
            let _ = self.shared.ctrl.send(CtrlReq::Round { arbitrate: true });
        }
    }

    /// Queues a message for another loop; batches are flushed (one mailbox
    /// lock + one wakeup per target) at the end of the readiness pass.
    pub(crate) fn forward(&mut self, target: usize, msg: LoopMsg) {
        if matches!(msg, LoopMsg::Data(_)) {
            self.remote_out += 1;
        }
        self.outbound[target].push(msg);
    }

    /// Forwards an admin command to the control thread. Returns whether the
    /// control thread is still there to answer.
    pub(crate) fn forward_admin(&mut self, op: AdminOp, token: u64, seq: u64) -> bool {
        self.admin_forwards += 1;
        self.shared
            .ctrl
            .send(CtrlReq::Admin {
                op,
                reply: AdminReply::Conn {
                    origin: self.index,
                    token,
                    seq,
                },
            })
            .is_ok()
    }

    /// Sends every queued outbound batch.
    pub(crate) fn flush_outbound(&mut self) {
        for target in 0..self.outbound.len() {
            if self.outbound[target].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.outbound[target]);
            // A refused batch means the target loop is tearing down; its
            // connections are gone with it, so the replies are moot.
            let _ = self.shared.mailboxes[target].send_many(batch);
        }
    }

    /// Executes a [`DataOp`] another loop (or a sync caller) forwarded here
    /// and routes the outcome back.
    pub(crate) fn serve_remote(&mut self, op: DataOp) {
        self.remote_in += 1;
        let outcome = match self.slots[op.shard] {
            Some(slot) => self.apply(slot, op.tenant, op.id, &op.key, &op.verb),
            // Only reachable if ownership and routing disagree — fail the
            // op rather than wedge the issuing connection.
            None => match op.verb {
                DataVerb::Get => DataOutcome::Value(None),
                _ => DataOutcome::Flag(false),
            },
        };
        // Forwarded ops are measured from the moment the issuing side
        // created them: mailbox queueing is part of the latency a remote
        // key pays, and hiding it would make the two histograms lie.
        let nanos = op.enqueued.elapsed().as_nanos() as u64;
        self.remote_latency.record(nanos);
        self.note_slow(nanos, "remote");
        // Read-through fill: the origin loop missed its replica of a
        // promoted key, so hand it the value *with the version it carried
        // at read time*. Queued before the DataReply on the same FIFO
        // mailbox, and this loop is the key's only writer, so the
        // (value, version) pair is a consistent snapshot.
        if op.hot_fill {
            if let DataOutcome::Value(Some((flags, data))) = &outcome {
                if let DataReplyTo::Conn { origin, .. } = &op.reply {
                    let origin = *origin;
                    if let Some(version) = self
                        .shared
                        .hot
                        .as_ref()
                        .map(|hot| hot.versions.load(op.tenant, op.id))
                    {
                        let fill = LoopMsg::HotFill {
                            tenant: op.tenant,
                            id: op.id,
                            key: op.key.clone(),
                            flags: *flags,
                            data: data.clone(),
                            version,
                        };
                        self.forward(origin, fill);
                    }
                }
            }
        }
        match op.reply {
            DataReplyTo::Conn {
                origin,
                token,
                seq,
                slot,
            } => self.forward(
                origin,
                LoopMsg::DataReply {
                    token,
                    seq,
                    slot,
                    outcome,
                },
            ),
            DataReplyTo::Sync(tx) => {
                let _ = tx.send(outcome);
            }
        }
    }

    /// Serves a control-thread request against the owned engines.
    pub(crate) fn serve_control(&mut self, msg: ControlMsg) {
        match msg {
            ControlMsg::Snapshot { reply } => {
                let _ = reply.send(self.snapshot());
            }
            ControlMsg::Shrink {
                shard,
                tenant,
                bytes,
                reply,
            } => {
                let released = self.slots[shard]
                    .and_then(|slot| self.owned[slot].cells.get_mut(tenant))
                    .map(|cell| cell.engine.shrink_total(bytes))
                    .unwrap_or(false);
                let _ = reply.send(released);
            }
            ControlMsg::Grow {
                shard,
                tenant,
                bytes,
            } => {
                if let Some(cell) =
                    self.slots[shard].and_then(|slot| self.owned[slot].cells.get_mut(tenant))
                {
                    cell.engine.grow_total(bytes);
                }
            }
            ControlMsg::Rebuild {
                shard,
                tenant,
                budget,
                reply,
            } => {
                let shared = Arc::clone(&self.shared);
                let name = self.tenants.get(tenant).cloned().unwrap_or_default();
                if let Some(cell) =
                    self.slots[shard].and_then(|slot| self.owned[slot].cells.get_mut(tenant))
                {
                    cell.engine = build_engine(&shared, shard, &name, budget);
                }
                let _ = reply.send(());
            }
            ControlMsg::CarveAdd { name, asks, reply } => {
                let shared = Arc::clone(&self.shared);
                let mut granted: Vec<(usize, usize, u64)> = Vec::new();
                let mut carved = vec![0u64; shared.shards];
                for (shard, tenant, bytes) in asks {
                    let released = self.slots[shard]
                        .and_then(|slot| self.owned[slot].cells.get_mut(tenant))
                        .map(|cell| cell.engine.shrink_total(bytes))
                        .unwrap_or(false);
                    if released {
                        granted.push((shard, tenant, bytes));
                        carved[shard] += bytes;
                    }
                }
                for shard in self.owned.iter_mut() {
                    shard.cells.push(OwnedEngine::new(build_engine(
                        &shared,
                        shard.global,
                        &name,
                        carved[shard.global].max(1),
                    )));
                }
                let _ = reply.send(granted);
            }
        }
    }

    fn snapshot(&self) -> LoopSnapshot {
        LoopSnapshot {
            loop_index: self.index,
            engines: self
                .owned
                .iter()
                .map(|shard| {
                    (
                        shard.global,
                        shard
                            .cells
                            .iter()
                            .map(|cell| EngineStat {
                                wire: cell.wire_counts(),
                                core: cell.engine.stats(),
                                used: cell.engine.used_bytes(),
                                items: cell.engine.len(),
                            })
                            .collect(),
                    )
                })
                .collect(),
            local_ops: self.local_ops,
            remote_in: self.remote_in,
            remote_out: self.remote_out,
            admin_forwards: self.admin_forwards,
            local_latency: self.local_latency.clone(),
            remote_latency: self.remote_latency.clone(),
            slow_ops: self.slow_ops,
            mrc: self.mrc.iter().map(OnlineMrc::snapshot).collect(),
            history: self.history.clone(),
            hot_keys: self
                .hot
                .as_ref()
                .map(|hot| hot.tracker.snapshot())
                .unwrap_or_default(),
            replica_hits: self.hot.as_ref().map(|hot| hot.replica_hits).unwrap_or(0),
            replica_fills: self.hot.as_ref().map(|hot| hot.replica_fills).unwrap_or(0),
            hot_invalidations: self.hot.as_ref().map(|hot| hot.invalidations).unwrap_or(0),
            replica_hit_cells: self
                .replica_tenant_hits
                .iter()
                .map(|(&(shard, tenant), &count)| (shard, tenant, count))
                .collect(),
        }
    }
}

/// The control thread: the single blocking coordinator behind rounds,
/// flushes, tenant onboarding and `stats` assembly. It owns both
/// balancers' decision state outright — being single-threaded replaces
/// every `try_lock` dance the mutex-based backend needed.
struct Control {
    shared: Arc<PlaneShared>,
    rx: Receiver<CtrlReq>,
    telemetry: Arc<ConnTelemetry>,
    balancers: Vec<ShardRebalancer>,
    arbiter: TenantArbiter,
    rebalance_runs: u64,
    rebalance_transfers: u64,
    rebalance_bytes: u64,
    arbiter_runs: u64,
    arbiter_transfers: u64,
    arbiter_bytes: u64,
    admin_msgs: u64,
    idle_timeout_ms: u64,
    /// Service times of the admin commands this thread ran (ns).
    admin_latency: Histogram,
    hot_rounds: u64,
    promotions: u64,
    demotions: u64,
}

/// A one-round [`EventSink`] that captures the balancer's proposals (with
/// their gradient evidence) so the control thread can journal exactly the
/// transfers it goes on to apply. Interior mutability because sink methods
/// take `&self`.
#[derive(Default)]
struct CapturedTransfers(std::cell::RefCell<Vec<TransferEvent>>);

impl EventSink for CapturedTransfers {
    fn transfer(&self, event: &TransferEvent) {
        self.0.borrow_mut().push(event.clone());
    }
}

impl Control {
    fn run(mut self) {
        while let Ok(req) = self.rx.recv() {
            match req {
                CtrlReq::Round { arbitrate } => {
                    // Clear the pending flag before running so a trigger
                    // that fires mid-round queues exactly one more round.
                    if arbitrate {
                        self.shared
                            .arbitrate_pending
                            .store(false, Ordering::Release);
                        self.arbitrate();
                    } else {
                        self.shared
                            .rebalance_pending
                            .store(false, Ordering::Release);
                        self.rebalance();
                    }
                }
                CtrlReq::RoundSync { arbitrate, done } => {
                    if arbitrate {
                        self.arbitrate();
                    } else {
                        self.rebalance();
                    }
                    let _ = done.send(());
                }
                CtrlReq::HotRound => {
                    if let Some(hot) = &self.shared.hot {
                        hot.round_pending.store(false, Ordering::Release);
                    }
                    self.hot_round();
                }
                CtrlReq::HotRoundSync { done } => {
                    self.hot_round();
                    let _ = done.send(());
                }
                CtrlReq::Admin { op, reply } => {
                    self.admin_msgs += 1;
                    let started = Instant::now();
                    let result = match op {
                        AdminOp::Stats { format } => match format {
                            StatsFormat::Text => AdminResult::Stats(self.stats()),
                            StatsFormat::Json => AdminResult::Blob(self.stats_blob(format)),
                            StatsFormat::Prom => AdminResult::Blob(self.stats_blob(format)),
                        },
                        AdminOp::FlushTenant { tenant } => {
                            self.flush_tenant(tenant);
                            AdminResult::Flushed
                        }
                        AdminOp::CreateTenant { name, weight } => {
                            AdminResult::Created(self.create_tenant(&name, weight))
                        }
                        AdminOp::AppList => AdminResult::Apps(self.app_list()),
                    };
                    self.admin_latency
                        .record(started.elapsed().as_nanos() as u64);
                    match reply {
                        AdminReply::Conn { origin, token, seq } => {
                            let _ = self.shared.mailboxes[origin].send(LoopMsg::AdminDone {
                                token,
                                seq,
                                result,
                            });
                        }
                        AdminReply::Sync(tx) => {
                            let _ = tx.send(result);
                        }
                    }
                }
                CtrlReq::Shutdown => break,
            }
        }
    }

    fn rebalance_active(&self) -> bool {
        self.shared.config.rebalance.enabled
            && self.shared.shards > 1
            && self.shared.config.mode != BackendMode::Default
    }

    fn arbiter_active(&self) -> bool {
        self.shared.config.tenant_balance.enabled
            && self.shared.roster.lock().directory.len() > 1
            && self.shared.config.mode != BackendMode::Default
    }

    /// Asks every live loop for a snapshot and collects the answers. A
    /// loop that died mid-request simply drops its reply sender, so the
    /// collection never hangs.
    fn gather(&self) -> Vec<Option<LoopSnapshot>> {
        let (tx, rx) = channel();
        for mailbox in &self.shared.mailboxes {
            let _ = mailbox.send(LoopMsg::Control(ControlMsg::Snapshot { reply: tx.clone() }));
        }
        drop(tx);
        let mut out: Vec<Option<LoopSnapshot>> = (0..self.shared.loops).map(|_| None).collect();
        while let Ok(snap) = rx.recv() {
            let index = snap.loop_index;
            out[index] = Some(snap);
        }
        out
    }

    /// Shadow-hit counters indexed `[shard][tenant]`, zero for any shard
    /// whose loop did not answer.
    fn shadow_grid(&self, snaps: &[Option<LoopSnapshot>], tenants: usize) -> Vec<Vec<u64>> {
        let mut grid = vec![vec![0u64; tenants]; self.shared.shards];
        for snap in snaps.iter().flatten() {
            for (shard, cells) in &snap.engines {
                for (t, cell) in cells.iter().enumerate().take(tenants) {
                    grid[*shard][t] = cell.core.shadow_hits;
                }
            }
        }
        grid
    }

    /// One shrink round-trip against the owning loop. `false` when the
    /// donor engine is pinned at its floors (or the loop is gone) — the
    /// transfer is simply skipped and re-decided from real budgets next
    /// round.
    fn shrink_on_owner(&self, shard: usize, tenant: usize, bytes: u64) -> bool {
        let (tx, rx) = channel();
        let owner = self.shared.owner_of(shard);
        if self.shared.mailboxes[owner]
            .send(LoopMsg::Control(ControlMsg::Shrink {
                shard,
                tenant,
                bytes,
                reply: tx,
            }))
            .is_err()
        {
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    fn grow_on_owner(&self, shard: usize, tenant: usize, bytes: u64) {
        let owner = self.shared.owner_of(shard);
        let _ = self.shared.mailboxes[owner].send(LoopMsg::Control(ControlMsg::Grow {
            shard,
            tenant,
            bytes,
        }));
    }

    /// One cross-shard rebalancing round per tenant: snapshot the gradient
    /// signal, decide, then move budget shrink-first so the total can
    /// momentarily dip but never exceed the configured bytes.
    fn rebalance(&mut self) {
        if !self.rebalance_active() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let snaps = self.gather();
        let mut roster = shared.roster.lock();
        let tenants = roster.directory.len();
        let grid = self.shadow_grid(&snaps, tenants);
        for t in 0..tenants {
            let samples: Vec<ShardSample> = (0..shared.shards)
                .map(|s| ShardSample {
                    shadow_hits: grid[s][t],
                    budget_bytes: roster.budgets[t][s],
                })
                .collect();
            // Capture the proposals' gradient evidence so the journal can
            // record *applied* transfers with the reasoning behind them.
            let sink = CapturedTransfers::default();
            let proposals = self.balancers[t].rebalance_with(&samples, &sink);
            let evidence = sink.0.into_inner();
            for (tr, ev) in proposals.iter().zip(&evidence) {
                if self.shrink_on_owner(tr.from, t, tr.bytes) {
                    roster.budgets[t][tr.from] -= tr.bytes;
                    self.grow_on_owner(tr.to, t, tr.bytes);
                    roster.budgets[t][tr.to] += tr.bytes;
                    self.rebalance_transfers += 1;
                    self.rebalance_bytes += tr.bytes;
                    self.shared.journal.record(EventKind::ShardTransfer {
                        tenant: roster.directory.name(t).to_string(),
                        from_shard: tr.from,
                        to_shard: tr.to,
                        bytes: tr.bytes,
                        from_gradient: ev.from_gradient,
                        to_gradient: ev.to_gradient,
                    });
                }
            }
        }
        self.rebalance_runs += 1;
    }

    /// One cross-tenant arbitration round. A tenant transfer is spread
    /// across every shard: each shard's donor slice is shrunk (evicting
    /// immediately, so the released bytes are real) and the winner grows
    /// by exactly the released slice — shard-local symmetry keeps the
    /// summed budget conserved even if some slices fail on their floors.
    fn arbitrate(&mut self) {
        if !self.arbiter_active() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let snaps = self.gather();
        let mut roster = shared.roster.lock();
        let tenants = roster.directory.len();
        let grid = self.shadow_grid(&snaps, tenants);
        let n = shared.shards as u64;
        let samples: Vec<TenantSample> = (0..tenants)
            .map(|t| TenantSample {
                shadow_hits: (0..shared.shards).map(|s| grid[s][t]).sum(),
                budget_bytes: roster.budgets[t].iter().sum(),
            })
            .collect();
        let sink = CapturedTransfers::default();
        let proposals = self.arbiter.arbitrate_with(&samples, &sink);
        let evidence = sink.0.into_inner();
        for (tr, ev) in proposals.iter().zip(&evidence) {
            let mut moved = 0u64;
            for s in 0..shared.shards {
                let slice = tr.bytes / n + u64::from((s as u64) < tr.bytes % n);
                if slice == 0 {
                    continue;
                }
                if !self.shrink_on_owner(s, tr.from, slice) {
                    continue;
                }
                roster.budgets[tr.from][s] -= slice;
                self.grow_on_owner(s, tr.to, slice);
                roster.budgets[tr.to][s] += slice;
                moved += slice;
            }
            if moved > 0 {
                self.arbiter_transfers += 1;
                self.arbiter_bytes += moved;
                self.shared.journal.record(EventKind::TenantTransfer {
                    from_tenant: roster.directory.name(tr.from).to_string(),
                    to_tenant: roster.directory.name(tr.to).to_string(),
                    bytes: moved,
                    from_gradient: ev.from_gradient,
                    to_gradient: ev.to_gradient,
                });
            }
        }
        self.arbiter_runs += 1;
    }

    /// One hot-key promotion round: merge the per-loop tracker windows,
    /// apply the hysteretic promote/demote plan to the master promoted
    /// set, journal the decisions and publish the new generation. Loops
    /// copy the set out at their next readiness pass.
    fn hot_round(&mut self) {
        let shared = Arc::clone(&self.shared);
        let Some(hot) = shared.hot.as_ref() else {
            return;
        };
        let snaps = self.gather();
        let mut merged: HashMap<(usize, Key), (u64, Bytes)> = HashMap::new();
        for snap in snaps.iter().flatten() {
            for entry in &snap.hot_keys {
                merged
                    .entry((entry.tenant, entry.id))
                    .and_modify(|slot| slot.0 += entry.count)
                    .or_insert_with(|| (entry.count, entry.key.clone()));
            }
        }
        // Tenant names for the journal, resolved before taking the
        // promoted lock (control-thread lock order: roster, then promoted).
        let names = shared.roster.lock().directory.names().to_vec();
        let name_of = |tenant: usize| -> String { names.get(tenant).cloned().unwrap_or_default() };
        let mut promoted = hot.promoted.lock();
        let plan = plan_round(&merged, &promoted, &hot.config);
        for (slot, count) in &plan.refreshed {
            if let Some(entry) = promoted.get_mut(slot) {
                entry.count = *count;
            }
        }
        let changed = !plan.promote.is_empty() || !plan.demote.is_empty();
        for slot in &plan.demote {
            if let Some(entry) = promoted.remove(slot) {
                self.demotions += 1;
                shared.journal.record(EventKind::HotKeyDemoted {
                    tenant: name_of(slot.0),
                    key: String::from_utf8_lossy(&entry.key).into_owned(),
                });
            }
        }
        for (slot, key, count) in &plan.promote {
            promoted.insert(
                *slot,
                PromotedEntry {
                    key: key.clone(),
                    count: *count,
                },
            );
            self.promotions += 1;
            shared.journal.record(EventKind::HotKeyPromoted {
                tenant: name_of(slot.0),
                key: String::from_utf8_lossy(key).into_owned(),
                count: *count,
            });
        }
        drop(promoted);
        if changed {
            // Publish only after the master set is fully updated, exactly
            // like the tenant-table generation.
            hot.generation.fetch_add(1, Ordering::AcqRel);
        }
        self.hot_rounds += 1;
    }

    /// Tenant `flush_all`: rebuild the tenant's engine on every shard at an
    /// even split of its *current* (arbitrated) budget. Rebuilds run
    /// donors-first (largest budget surplus first), one blocking round-trip
    /// at a time, so the tenant's summed live targets never overshoot its
    /// total while traffic keeps filling the other shards.
    fn flush_tenant(&mut self, tenant: usize) {
        let shared = Arc::clone(&self.shared);
        let mut roster = shared.roster.lock();
        if tenant >= roster.directory.len() {
            return;
        }
        let total: u64 = roster.budgets[tenant].iter().sum();
        let shares = even_split(total.max(1), shared.shards);
        let mut order: Vec<usize> = (0..shared.shards).collect();
        order.sort_by_key(|&s| {
            std::cmp::Reverse(roster.budgets[tenant][s].saturating_sub(shares[s]))
        });
        for s in order {
            let (tx, rx) = channel();
            let owner = shared.owner_of(s);
            if shared.mailboxes[owner]
                .send(LoopMsg::Control(ControlMsg::Rebuild {
                    shard: s,
                    tenant,
                    budget: shares[s],
                    reply: tx,
                }))
                .is_ok()
            {
                let _ = rx.recv();
            }
            roster.budgets[tenant][s] = shares[s];
        }
        // The rebuilds just dropped keys no loop can enumerate, so stale
        // hot-key replicas of this tenant must stop serving before the
        // flush is acknowledged. Bumping every version slot (after the
        // last rebuild, before the ack) guarantees any replica captured
        // pre-flush fails revalidation; the tenant-wide purge broadcast is
        // eager memory reclaim on top, exactly like per-key invalidation.
        if let Some(hot) = shared.hot.as_ref() {
            hot.versions.bump_all();
            for mailbox in &shared.mailboxes {
                let _ = mailbox.send(LoopMsg::HotFlushTenant { tenant });
            }
        }
        self.balancers[tenant].reset();
        shared.journal.record(EventKind::TenantFlushed {
            tenant: roster.directory.name(tenant).to_string(),
        });
    }

    /// Hosts a new application live (`app_create`): validate, carve a
    /// weight-proportional budget out of every existing tenant's engines
    /// via the owning loops, then publish the new tenant table. Only bytes
    /// actually released are granted, so the configured total is conserved
    /// exactly. The generation counter moves *after* every loop has built
    /// the new engines.
    fn create_tenant(&mut self, name: &str, weight: u64) -> Result<usize, String> {
        if !TenantDirectory::valid_name(name) {
            return Err(format!(
                "invalid app name {name:?}: need 1-64 ASCII graphic bytes, no ':'"
            ));
        }
        if weight == 0 {
            return Err("app weight must be at least 1".to_string());
        }
        let shared = Arc::clone(&self.shared);
        let mut roster = shared.roster.lock();
        if roster.directory.index_of(name).is_some() {
            return Err(format!("app {name:?} already exists"));
        }
        let n = shared.shards;
        let tenants = roster.directory.len();
        let sum_weights: u64 = roster.weights.iter().sum();
        let target_total = (shared.config.total_bytes as u128 * weight as u128
            / (sum_weights + weight) as u128) as u64;
        let target_slices = even_split(target_total.max(1), n);
        let mut per_loop: Vec<Vec<(usize, usize, u64)>> =
            (0..shared.loops).map(|_| Vec::new()).collect();
        for (s, &target_slice) in target_slices.iter().enumerate() {
            let shard_total: u64 = (0..tenants).map(|t| roster.budgets[t][s]).sum();
            for t in 0..tenants {
                let ask = (target_slice as u128 * roster.budgets[t][s] as u128
                    / shard_total.max(1) as u128) as u64;
                if ask > 0 {
                    per_loop[shared.owner_of(s)].push((s, t, ask));
                }
            }
        }
        let (tx, rx) = channel();
        for (i, asks) in per_loop.into_iter().enumerate() {
            // Loop i owns shard i (and every loops-th after it) iff
            // i < shards; owner loops with no asks still must build the
            // new tenant's cells.
            if i < n {
                let _ = shared.mailboxes[i].send(LoopMsg::Control(ControlMsg::CarveAdd {
                    name: name.to_string(),
                    asks,
                    reply: tx.clone(),
                }));
            }
        }
        drop(tx);
        let mut carved_per_shard = vec![0u64; n];
        while let Ok(granted) = rx.recv() {
            for (s, t, bytes) in granted {
                roster.budgets[t][s] -= bytes;
                carved_per_shard[s] += bytes;
            }
        }
        for (s, &bytes) in carved_per_shard.iter().enumerate() {
            if bytes > 0 {
                shared.journal.record(EventKind::CarveOut {
                    tenant: name.to_string(),
                    shard: s,
                    bytes,
                });
            }
        }
        shared.journal.record(EventKind::TenantCreated {
            tenant: name.to_string(),
            weight,
        });
        // Rebase every tenant's flush-restore point to the post-carve live
        // split: restoring the donors' pre-carve budgets on `flush` while
        // the new tenant keeps its carve would over-commit the total.
        for t in 0..tenants {
            for s in 0..n {
                roster.initial_budgets[t][s] = roster.budgets[t][s];
            }
        }
        let index = roster.directory.add(name);
        roster.weights.push(weight);
        roster.budgets.push(carved_per_shard.clone());
        roster.initial_budgets.push(carved_per_shard);
        self.balancers
            .push(ShardRebalancer::new(n, shared.config.rebalance.clone()));
        self.arbiter =
            TenantArbiter::new(roster.directory.len(), shared.config.tenant_balance.clone());
        // Publish only now, with every owning loop's cells in place.
        shared.generation.fetch_add(1, Ordering::AcqRel);
        Ok(index)
    }

    fn app_list(&self) -> Vec<(String, u64, u64)> {
        let roster = self.shared.roster.lock();
        (0..roster.directory.len())
            .map(|t| {
                (
                    roster.directory.name(t).to_string(),
                    roster.weights[t],
                    roster.budgets[t].iter().sum(),
                )
            })
            .collect()
    }

    /// Assembles the stats state every exposition format renders from:
    /// the engine-level snapshot, the plane counters and the per-loop
    /// service-time telemetry.
    fn collect(&self) -> (StatsSnapshot, PlaneStats, Vec<LoopTelemetry>, ObservedPlane) {
        let shared = Arc::clone(&self.shared);
        let snaps = self.gather();
        let roster = shared.roster.lock();
        let tenants = roster.directory.len();
        let mut cells = vec![vec![EngineStat::default(); tenants]; shared.shards];
        let mut per_loop = vec![(0u64, 0u64, 0u64); shared.loops];
        let mut loops = vec![LoopTelemetry::default(); shared.loops];
        let mut mrc = vec![MrcSnapshot::default(); tenants];
        // Loops count what they forwarded, control counts what it served;
        // the two only differ transiently (a forward still in flight) or
        // for admin calls arriving through the synchronous handle instead
        // of a connection — report whichever saw more.
        let forwarded: u64 = snaps.iter().flatten().map(|s| s.admin_forwards).sum();
        let admin_msgs = self.admin_msgs.max(forwarded);
        for snap in snaps.iter().flatten() {
            per_loop[snap.loop_index] = (snap.local_ops, snap.remote_in, snap.remote_out);
            loops[snap.loop_index] = LoopTelemetry {
                local: snap.local_latency.clone(),
                remote: snap.remote_latency.clone(),
                slow_ops: snap.slow_ops,
            };
            for (shard, engines) in &snap.engines {
                for (t, cell) in engines.iter().enumerate().take(tenants) {
                    cells[*shard][t] = cell.clone();
                }
            }
            for (t, view) in snap.mrc.iter().enumerate().take(tenants) {
                mrc[t].merge(view);
            }
        }
        // Replica-served GETs are executed on non-owning loops; fold them
        // into the owning cell's wire counters so tenant/shard hit ratios
        // keep seeing a promoted key's (dominant) traffic. Gets and hits
        // move together, so the derived miss count is untouched.
        for snap in snaps.iter().flatten() {
            for &(shard, tenant, count) in &snap.replica_hit_cells {
                if shard < cells.len() && tenant < tenants {
                    cells[shard][tenant].wire.gets += count;
                    cells[shard][tenant].wire.hits += count;
                }
            }
        }
        let histories: Vec<&TimeSeries> = snaps.iter().flatten().map(|s| &s.history).collect();
        let elapsed = shared.started.elapsed();
        let hot_keys = shared.hot.as_ref().map(|hot| {
            let name_of = |tenant: usize| -> String {
                if tenant < roster.directory.len() {
                    roster.directory.name(tenant).to_string()
                } else {
                    String::new()
                }
            };
            let mut merged: HashMap<(usize, Key), (u64, Bytes)> = HashMap::new();
            for snap in snaps.iter().flatten() {
                for entry in &snap.hot_keys {
                    merged
                        .entry((entry.tenant, entry.id))
                        .and_modify(|slot| slot.0 += entry.count)
                        .or_insert_with(|| (entry.count, entry.key.clone()));
                }
            }
            let mut tracked: Vec<HotKeyEntryDoc> = merged
                .iter()
                .map(|(&(tenant, _), (count, key))| HotKeyEntryDoc {
                    app: name_of(tenant),
                    key: String::from_utf8_lossy(key).into_owned(),
                    ops: *count,
                })
                .collect();
            tracked.sort_by(|a, b| b.ops.cmp(&a.ops).then_with(|| a.key.cmp(&b.key)));
            // Bound the exposed list: the tail of a wide window is noise.
            tracked.truncate(HOT_KEYS_EXPOSED);
            let mut promoted: Vec<HotKeyEntryDoc> = hot
                .promoted
                .lock()
                .iter()
                .map(|(&(tenant, _), entry)| HotKeyEntryDoc {
                    app: name_of(tenant),
                    key: String::from_utf8_lossy(&entry.key).into_owned(),
                    ops: entry.count,
                })
                .collect();
            promoted.sort_by(|a, b| b.ops.cmp(&a.ops).then_with(|| a.key.cmp(&b.key)));
            HotKeysDoc {
                tracked,
                promoted,
                promotions: self.promotions,
                demotions: self.demotions,
                rounds: self.hot_rounds,
                replica_hits: snaps.iter().flatten().map(|s| s.replica_hits).sum(),
                replica_fills: snaps.iter().flatten().map(|s| s.replica_fills).sum(),
                invalidations: snaps.iter().flatten().map(|s| s.hot_invalidations).sum(),
            }
        });
        let observed = ObservedPlane {
            server_start_unix_us: shared.start_unix_us,
            snapshot_unix_us: shared.start_unix_us + elapsed.as_micros() as u64,
            mrc_shift: shared.mrc_shift,
            mrc,
            history: TimeSeries::merged(&histories),
            hot_keys,
        };
        let snapshot = StatsSnapshot {
            total_bytes: shared.config.total_bytes,
            mode: shared.config.mode,
            requested_shards: shared.config.requested_shards(),
            uptime_s: elapsed.as_secs(),
            cells,
            tenant_names: roster.directory.names().to_vec(),
            tenant_budgets: roster.tenant_budgets(),
            shard_budgets: roster.shard_budgets(shared.shards),
            balance: BalanceCounters {
                rebalance_enabled: self.rebalance_active(),
                rebalance_runs: self.rebalance_runs,
                rebalance_transfers: self.rebalance_transfers,
                rebalance_bytes: self.rebalance_bytes,
                arbiter_enabled: shared.config.tenant_balance.enabled
                    && tenants > 1
                    && shared.config.mode != BackendMode::Default,
                arbiter_runs: self.arbiter_runs,
                arbiter_transfers: self.arbiter_transfers,
                arbiter_bytes: self.arbiter_bytes,
            },
        };
        let plane = PlaneStats {
            owner_of: (0..shared.shards).map(|s| shared.owner_of(s)).collect(),
            per_loop,
            admin_msgs,
            idle_timeout_ms: self.idle_timeout_ms,
            slow_ops: loops.iter().map(|l| l.slow_ops).sum(),
        };
        (snapshot, plane, loops, observed)
    }

    /// The legacy human-oriented `stats` report.
    fn stats(&self) -> Vec<(String, String)> {
        let (snapshot, plane, _, _) = self.collect();
        render_stats(&snapshot, Some(&self.telemetry), Some(&plane))
    }

    /// The machine-readable expositions: one `cliffhanger-stats/v1`
    /// document, rendered as JSON or Prometheus text.
    fn stats_blob(&self, format: StatsFormat) -> String {
        let (snapshot, plane, loops, observed) = self.collect();
        let doc = build_document(
            &snapshot,
            Some(&self.telemetry),
            &plane,
            &loops,
            &self.admin_latency,
            &self.shared.journal,
            &observed,
        );
        match format {
            StatsFormat::Prom => render_prom(&doc),
            _ => render_json(&doc),
        }
    }
}

/// The public handle to a running data plane: the synchronous view
/// benchmarks, sweeps and tests use ([`crate::server::CacheServer::cache`]
/// returns it). Every method is a message round-trip to the owning loop or
/// the control thread; after shutdown they degrade to misses/defaults
/// instead of panicking.
pub struct PlaneHandle {
    shared: Arc<PlaneShared>,
}

impl PlaneHandle {
    fn data_op(&self, tenant: usize, key: &[u8], verb: DataVerb) -> Option<DataOutcome> {
        let (shard, id) = route_key(tenant, key, self.shared.shards);
        let owner = self.shared.owner_of(shard);
        let (tx, rx) = channel();
        self.shared.mailboxes[owner]
            .send(LoopMsg::Data(DataOp {
                shard,
                tenant,
                id,
                key: Bytes::copy_from_slice(key),
                verb,
                reply: DataReplyTo::Sync(tx),
                enqueued: Instant::now(),
                hot_fill: false,
            }))
            .ok()?;
        rx.recv().ok()
    }

    fn admin(&self, op: AdminOp) -> Option<AdminResult> {
        let (tx, rx) = channel();
        self.shared
            .ctrl
            .send(CtrlReq::Admin {
                op,
                reply: AdminReply::Sync(tx),
            })
            .ok()?;
        rx.recv().ok()
    }

    /// Looks up a key for one tenant, returning its flags and value on an
    /// exact match.
    pub fn get_for(&self, tenant: usize, key: &[u8]) -> Option<(u32, Bytes)> {
        match self.data_op(tenant, key, DataVerb::Get)? {
            DataOutcome::Value(found) => found,
            DataOutcome::Flag(_) => None,
        }
    }

    /// Stores a key for one tenant unconditionally. Returns `false` only
    /// if the item could not be admitted.
    pub fn set_for(&self, tenant: usize, key: &[u8], flags: u32, data: Bytes) -> bool {
        matches!(
            self.data_op(tenant, key, DataVerb::Set { flags, data }),
            Some(DataOutcome::Flag(true))
        )
    }

    /// Stores a key for one tenant only if it is absent (`add`).
    pub fn add_for(&self, tenant: usize, key: &[u8], flags: u32, data: Bytes) -> bool {
        matches!(
            self.data_op(tenant, key, DataVerb::Add { flags, data }),
            Some(DataOutcome::Flag(true))
        )
    }

    /// Stores a key for one tenant only if it is present (`replace`).
    pub fn replace_for(&self, tenant: usize, key: &[u8], flags: u32, data: Bytes) -> bool {
        matches!(
            self.data_op(tenant, key, DataVerb::Replace { flags, data }),
            Some(DataOutcome::Flag(true))
        )
    }

    /// Deletes a key for one tenant; returns whether it was present.
    pub fn delete_for(&self, tenant: usize, key: &[u8]) -> bool {
        matches!(
            self.data_op(tenant, key, DataVerb::Delete),
            Some(DataOutcome::Flag(true))
        )
    }

    /// Looks up a key for the default tenant.
    pub fn get(&self, key: &[u8]) -> Option<(u32, Bytes)> {
        self.get_for(0, key)
    }

    /// Stores a key for the default tenant.
    pub fn set(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        self.set_for(0, key, flags, data)
    }

    /// `add` for the default tenant.
    pub fn add(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        self.add_for(0, key, flags, data)
    }

    /// `replace` for the default tenant.
    pub fn replace(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        self.replace_for(0, key, flags, data)
    }

    /// Deletes a key for the default tenant.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.delete_for(0, key)
    }

    /// The full `stats` report (empty after shutdown).
    pub fn stats(&self) -> Vec<(String, String)> {
        match self.admin(AdminOp::Stats {
            format: StatsFormat::Text,
        }) {
            Some(AdminResult::Stats(lines)) => lines,
            _ => Vec::new(),
        }
    }

    /// The versioned `cliffhanger-stats/v1` JSON document (empty after
    /// shutdown).
    pub fn stats_json(&self) -> String {
        match self.admin(AdminOp::Stats {
            format: StatsFormat::Json,
        }) {
            Some(AdminResult::Blob(text)) => text,
            _ => String::new(),
        }
    }

    /// The Prometheus text exposition of the same stats document (empty
    /// after shutdown).
    pub fn stats_prom(&self) -> String {
        match self.admin(AdminOp::Stats {
            format: StatsFormat::Prom,
        }) {
            Some(AdminResult::Blob(text)) => text,
            _ => String::new(),
        }
    }

    /// The retained flight-recorder events, oldest first.
    pub fn journal_events(&self) -> Vec<telemetry::JournalEvent> {
        self.shared.journal.snapshot()
    }

    /// Journals a connection shed at the accept gate (called by the
    /// acceptor, which has no loop state of its own).
    pub(crate) fn note_connection_shed(&self) {
        self.shared.journal.record(EventKind::ConnectionShed);
    }

    /// Drops every item of one tenant, keeping (but re-splitting) its
    /// arbitrated budget.
    pub fn flush_tenant(&self, tenant: usize) {
        let _ = self.admin(AdminOp::FlushTenant { tenant });
    }

    /// Hosts a new application live; returns its tenant index.
    pub fn create_tenant(&self, name: &str, weight: u64) -> Result<usize, String> {
        match self.admin(AdminOp::CreateTenant {
            name: name.to_string(),
            weight,
        }) {
            Some(AdminResult::Created(result)) => result,
            _ => Err("server is shutting down".to_string()),
        }
    }

    /// The hosted applications as `(name, weight, live budget bytes)`.
    pub fn app_list(&self) -> Vec<(String, u64, u64)> {
        let roster = self.shared.roster.lock();
        (0..roster.directory.len())
            .map(|t| {
                (
                    roster.directory.name(t).to_string(),
                    roster.weights[t],
                    roster.budgets[t].iter().sum(),
                )
            })
            .collect()
    }

    /// Runs one cross-shard rebalancing round per tenant, synchronously.
    pub fn rebalance_now(&self) {
        let (tx, rx) = channel();
        if self
            .shared
            .ctrl
            .send(CtrlReq::RoundSync {
                arbitrate: false,
                done: tx,
            })
            .is_ok()
        {
            let _ = rx.recv();
        }
    }

    /// Runs one hot-key promotion round synchronously: merges the per-loop
    /// tracker windows and applies the hysteretic promote/demote plan.
    /// A no-op when hot-key detection is disabled. Test/bench hook.
    pub fn hot_round_now(&self) {
        let (tx, rx) = channel();
        if self
            .shared
            .ctrl
            .send(CtrlReq::HotRoundSync { done: tx })
            .is_ok()
        {
            let _ = rx.recv();
        }
    }

    /// The currently promoted hot keys as `(app, key)` pairs, hottest
    /// first. Empty when hot-key detection is disabled.
    pub fn promoted_keys(&self) -> Vec<(String, String)> {
        let Some(hot) = self.shared.hot.as_ref() else {
            return Vec::new();
        };
        let names = self.shared.roster.lock().directory.names().to_vec();
        let mut entries: Vec<(u64, String, String)> = hot
            .promoted
            .lock()
            .iter()
            .map(|(&(tenant, _), entry)| {
                (
                    entry.count,
                    names.get(tenant).cloned().unwrap_or_default(),
                    String::from_utf8_lossy(&entry.key).into_owned(),
                )
            })
            .collect();
        entries.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(&b.2)));
        entries
            .into_iter()
            .map(|(_, app, key)| (app, key))
            .collect()
    }

    /// Runs one cross-tenant arbitration round, synchronously.
    pub fn arbitrate_now(&self) {
        let (tx, rx) = channel();
        if self
            .shared
            .ctrl
            .send(CtrlReq::RoundSync {
                arbitrate: true,
                done: tx,
            })
            .is_ok()
        {
            let _ = rx.recv();
        }
    }

    /// Number of shards the plane is running.
    pub fn shard_count(&self) -> usize {
        self.shared.shards
    }

    /// Number of event loops the shards are fused to.
    pub fn event_loops(&self) -> usize {
        self.shared.loops
    }

    /// The event loop owning a shard.
    pub fn shard_owner(&self, shard: usize) -> usize {
        self.shared.owner_of(shard)
    }

    /// The hosted tenant names (default first).
    pub fn tenant_names(&self) -> Vec<String> {
        self.shared.roster.lock().directory.names().to_vec()
    }

    /// The dense index of a tenant name, if hosted.
    pub fn tenant_index(&self, name: &str) -> Option<usize> {
        self.shared.roster.lock().directory.index_of(name)
    }

    /// Number of tenants hosted (at least 1).
    pub fn tenant_count(&self) -> usize {
        self.shared.roster.lock().directory.len()
    }

    /// The live per-tenant byte budgets.
    pub fn tenant_budgets(&self) -> Vec<u64> {
        self.shared.roster.lock().tenant_budgets()
    }

    /// The live per-shard byte budgets.
    pub fn shard_budgets(&self) -> Vec<u64> {
        let shards = self.shared.shards;
        self.shared.roster.lock().shard_budgets(shards)
    }

    /// The backend mode the plane runs.
    pub fn mode(&self) -> BackendMode {
        self.shared.config.mode
    }
}

/// A running data plane: the loops, the control thread and the handle.
pub(crate) struct Plane {
    pub(crate) handle: Arc<PlaneHandle>,
    pub(crate) loops: Arc<Vec<crate::reactor::LoopHandle>>,
    pub(crate) ctrl: Sender<CtrlReq>,
    control: Option<JoinHandle<()>>,
}

impl Plane {
    /// Builds the roster, fuses shards to `workers` event loops, spawns
    /// them and the control thread.
    pub(crate) fn start(
        config: BackendConfig,
        workers: usize,
        telemetry: Arc<ConnTelemetry>,
        idle_timeout: Option<Duration>,
        slow_op_micros: u64,
    ) -> std::io::Result<Plane> {
        let directory = config.tenant_directory();
        let weights = config.tenant_weights(&directory);
        let requested = config.requested_shards();
        let shards = config.resolved_shards();
        if shards < requested {
            eprintln!(
                "plane: shard count clamped from {requested} to {shards} \
                 ({} MB total across {} tenant(s)); \
                 stats reports shards_requested/shard_count",
                config.total_bytes >> 20,
                directory.len(),
            );
        }
        let tenant_shares = weighted_split(config.total_bytes, &weights);
        let initial_budgets: Vec<Vec<u64>> = tenant_shares
            .iter()
            .map(|&share| even_split(share.max(1), shards))
            .collect();
        let (ctrl_tx, ctrl_rx) = channel();
        let mut mailboxes = Vec::with_capacity(workers);
        let mut seeds = Vec::with_capacity(workers);
        for index in 0..workers {
            let (mailbox, seed) = crate::reactor::loop_channel(index)?;
            mailboxes.push(mailbox);
            seeds.push(seed);
        }
        let shared = Arc::new(PlaneShared {
            shards,
            loops: workers,
            mailboxes,
            ctrl: ctrl_tx.clone(),
            generation: AtomicU64::new(1),
            roster: Mutex::new(RosterMaster {
                directory: directory.clone(),
                weights,
                initial_budgets: initial_budgets.clone(),
                budgets: initial_budgets.clone(),
            }),
            journal: Arc::new(Journal::new(JOURNAL_CAPACITY)),
            slow_op_nanos: slow_op_micros.saturating_mul(1_000),
            started: Instant::now(),
            start_unix_us: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            mrc_shift: config.mrc_shift(),
            hot: config
                .hot_key
                .enabled
                .then(|| HotShared::new(config.hot_key.clone())),
            rebalance_pending: AtomicBool::new(false),
            arbitrate_pending: AtomicBool::new(false),
            config,
        });
        let control = Control {
            shared: Arc::clone(&shared),
            rx: ctrl_rx,
            telemetry: Arc::clone(&telemetry),
            balancers: (0..directory.len())
                .map(|_| ShardRebalancer::new(shards, shared.config.rebalance.clone()))
                .collect(),
            arbiter: TenantArbiter::new(directory.len(), shared.config.tenant_balance.clone()),
            rebalance_runs: 0,
            rebalance_transfers: 0,
            rebalance_bytes: 0,
            arbiter_runs: 0,
            arbiter_transfers: 0,
            arbiter_bytes: 0,
            admin_msgs: 0,
            idle_timeout_ms: idle_timeout.map(|t| t.as_millis() as u64).unwrap_or(0),
            admin_latency: Histogram::new(),
            hot_rounds: 0,
            promotions: 0,
            demotions: 0,
        };
        let control_thread = std::thread::Builder::new()
            .name("cache-control".to_string())
            .spawn(move || control.run())?;
        let loops: Vec<crate::reactor::LoopHandle> = seeds
            .into_iter()
            .map(|seed| {
                let state = LoopState::new(seed.index, Arc::clone(&shared), &initial_budgets);
                crate::reactor::LoopHandle::spawn(
                    seed,
                    state,
                    Arc::clone(&shared),
                    Arc::clone(&telemetry),
                    idle_timeout,
                )
            })
            .collect::<std::io::Result<_>>()?;
        Ok(Plane {
            handle: Arc::new(PlaneHandle {
                shared: Arc::clone(&shared),
            }),
            loops: Arc::new(loops),
            ctrl: ctrl_tx,
            control: Some(control_thread),
        })
    }

    /// Stops the control thread first (admin requests in flight drain with
    /// the loops still alive to answer), then the loops.
    pub(crate) fn shutdown(&mut self) {
        let _ = self.ctrl.send(CtrlReq::Shutdown);
        if let Some(thread) = self.control.take() {
            let _ = thread.join();
        }
        for event_loop in self.loops.iter() {
            event_loop.begin_shutdown();
        }
        for event_loop in self.loops.iter() {
            event_loop.join();
        }
    }
}
