//! The `loadgen` command-line tool.
//!
//! With `--addr` it drives an external server; without it, it self-hosts an
//! in-process [`cache_server::CacheServer`] (handy for CI smoke runs and
//! the shard sweep). `--sweep` runs the same workload against a series of
//! shard counts and reports the throughput curve.
//!
//! The JSON report goes to stdout (or `--json <path>`); the human-readable
//! summary goes to stderr, so `loadgen … | jq .` just works.

use cache_server::BackendMode;
use loadgen::scenario::{named_scenario, run_scenario, scenario_names, ScenarioReport};
use loadgen::{
    run_load, run_self_hosted, run_shard_sweep, LoadMode, LoadReport, LoadgenConfig,
    SelfHostConfig, SweepReport, TenantLoad, WorkloadSpec,
};
use std::io::Write;
use std::process::ExitCode;
use workloads::{KeyPopularity, SizeDistribution};

const USAGE: &str = "\
loadgen — memtier-style load generator for the cliffhanger cache server

USAGE:
    cargo run --release -p loadgen -- [OPTIONS]

TARGET (default: self-host an in-process server):
    --addr <host:port>      drive an external server instead of self-hosting
    --shards <n>            shard count for the self-hosted server (0 = auto)
    --mb <n>                self-hosted cache size in MB            [64]
    --allocator <name>      default | hillclimbing | cliffhanger    [cliffhanger]
    --server-workers <n>    server event loops, each multiplexing
                            many connections (0 = one per CPU)      [0]
    --rebalance <on|off>    cross-shard budget rebalancing          [on]
    --slow-op-micros <n>    slow-op log threshold in microseconds
                            (ops at/over it are counted and sampled
                            into the server journal; 0 = off)       [0]
    --mrc-sample <n>        online miss-ratio-curve profiling: sample
                            one in <n> GETs (rounded up to a power
                            of two; 0 = off), surfaced as the `mrc`
                            section of `stats json`                 [64]
    --hot-key-promote <on|off>  hot-key detection + per-loop replica
                            promotion (the aggressive profile: every
                            GET sampled, fast control rounds), echoed
                            as the report's hot_key_* counters       [off]

LOAD:
    --requests <n>          measured requests                       [100000]
    --connections <n>       worker threads / TCP connections        [4]
    --pipeline <n>          requests per pipelined batch            [16]
    --mode <closed|open>    driving mode                            [closed]
    --rate <rps>            open-loop total arrival rate            [20000]
    --warmup <n>            hottest keys preloaded untimed          [10000]
    --fill-on-miss <on|off> cache-aside demand fill: SET every
                            missed GET key (fills ride on top of
                            the request budget; in open loop each
                            fill occupies the next scheduled
                            arrival slot, and fills get their own
                            fill_latency report section)            [off]

WORKLOAD:
    --keys <n>              key-universe size                       [50000]
    --zipf <exponent>       Zipf exponent (0 = uniform)             [0.99]
    --get-fraction <f>      fraction of GETs                        [0.9]
    --value-size <spec>     fixed:<bytes> | etc | etc:<cap-bytes>   [etc:16384]
    --seed <n>              base RNG seed

MULTI-TENANT (the `app <name>` protocol extension):
    --tenants <spec>        comma-separated name[:weight[:zipf[:keys]]]
                            entries, e.g. hot:3:1.1:20000,cold:1:0.7
                            (weight = connection/request share; zipf and
                            keys default to the global flags; a self-hosted
                            server hosts the named apps automatically)
    --tenant-balance <on|off>  cross-tenant budget arbitration      [on]

RESILIENCE SCENARIOS (self-host only; other load/workload flags ignored):
    --scenario <name>       run a named chaos/replay scenario end to end and
                            report `cliffhanger-scenario/v1` with invariant
                            verdicts: scan_storm | diurnal | drift |
                            conn_churn | slow_loris | tenant_storm |
                            flash_crowd
    --scenario-scale <f>    scale the scenario's request volume (1.0 =
                            standard nightly size, 0.05 = CI smoke)  [1.0]

OUTPUT:
    --sweep <a,b,c>         shard sweep over these counts (self-host only)
    --json <path>           write the JSON report to a file instead of stdout
    -h, --help              this text
";

struct Args {
    addr: Option<String>,
    shards: usize,
    mb: u64,
    allocator: BackendMode,
    server_workers: usize,
    rebalance: bool,
    tenant_balance: bool,
    slow_op_micros: u64,
    mrc_sample: u64,
    hot_key_promote: bool,
    sweep: Option<Vec<usize>>,
    scenario: Option<String>,
    scenario_scale: f64,
    json_path: Option<String>,
    load: LoadgenConfig,
}

/// Parses one `--tenants` entry: `name[:weight[:zipf[:keys]]]`. The zipf
/// exponent and key count default to the surrounding global flags; the rest
/// of the workload (sizes, GET fraction, seed) is always inherited.
fn parse_tenant(
    entry: &str,
    base: &WorkloadSpec,
    num_keys: u64,
    zipf: f64,
) -> Result<TenantLoad, String> {
    let mut parts = entry.split(':');
    let name = parts
        .next()
        .filter(|n| !n.is_empty())
        .ok_or_else(|| format!("empty tenant name in {entry:?}"))?;
    let weight: u64 = match parts.next() {
        Some(w) => w
            .parse()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("bad tenant weight in {entry:?} (need an integer >= 1)"))?,
        None => 1,
    };
    let exponent: f64 = match parts.next() {
        Some(z) => z
            .parse()
            .map_err(|_| format!("bad tenant zipf exponent in {entry:?}"))?,
        None => zipf,
    };
    let keys: u64 = match parts.next() {
        Some(k) => k
            .parse()
            .ok()
            .filter(|&k| k >= 1)
            .ok_or_else(|| format!("bad tenant key count in {entry:?}"))?,
        None => num_keys,
    };
    if parts.next().is_some() {
        return Err(format!(
            "too many fields in tenant {entry:?} (want name[:weight[:zipf[:keys]]])"
        ));
    }
    let mut spec = base.clone();
    spec.keys = if exponent <= 0.0 {
        KeyPopularity::Uniform { num_keys: keys }
    } else {
        KeyPopularity::Zipf {
            num_keys: keys,
            exponent,
        }
    };
    Ok(TenantLoad::new(name, weight, spec))
}

fn parse_value_size(spec: &str) -> Result<SizeDistribution, String> {
    if let Some(bytes) = spec.strip_prefix("fixed:") {
        let bytes: u64 = bytes
            .parse()
            .map_err(|_| format!("bad --value-size: {spec}"))?;
        return Ok(SizeDistribution::Fixed(bytes.max(1)));
    }
    if spec == "etc" {
        return Ok(SizeDistribution::facebook_etc());
    }
    if let Some(cap) = spec.strip_prefix("etc:") {
        let cap: u64 = cap
            .parse()
            .map_err(|_| format!("bad --value-size: {spec}"))?;
        return Ok(SizeDistribution::GeneralizedPareto {
            location: 0.0,
            scale: 214.476,
            shape: 0.348_468,
            cap: cap.max(1),
        });
    }
    Err(format!(
        "bad --value-size {spec:?}: expected fixed:<bytes>, etc, or etc:<cap>"
    ))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        shards: 0,
        mb: 64,
        allocator: BackendMode::Cliffhanger,
        server_workers: 0,
        rebalance: true,
        tenant_balance: true,
        slow_op_micros: 0,
        mrc_sample: 64,
        hot_key_promote: false,
        sweep: None,
        scenario: None,
        scenario_scale: 1.0,
        json_path: None,
        load: LoadgenConfig::default(),
    };
    let mut num_keys: u64 = 50_000;
    let mut zipf: f64 = 0.99;
    let mut open_rate: f64 = 20_000.0;
    let mut open_mode = false;
    // Parsed after the loop: tenant specs default their zipf/keys to the
    // global flags, which may appear in any order.
    let mut tenants_spec: Option<String> = None;
    // First self-host-only flag seen, to reject silent no-ops with --addr.
    let mut self_host_flag: Option<&'static str> = None;

    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        for known in [
            "--shards",
            "--mb",
            "--allocator",
            "--server-workers",
            "--rebalance",
            "--tenant-balance",
            "--slow-op-micros",
            "--mrc-sample",
            "--hot-key-promote",
        ] {
            if flag == known {
                self_host_flag.get_or_insert(known);
            }
        }
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "-h" | "--help" => return Err(String::new()),
            "--addr" => args.addr = Some(value("--addr")?),
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "bad --shards".to_string())?
            }
            "--mb" => args.mb = value("--mb")?.parse().map_err(|_| "bad --mb".to_string())?,
            "--allocator" => {
                args.allocator = match value("--allocator")?.as_str() {
                    "default" => BackendMode::Default,
                    "hillclimbing" => BackendMode::HillClimbing,
                    "cliffhanger" => BackendMode::Cliffhanger,
                    other => return Err(format!("bad --allocator {other:?}")),
                }
            }
            "--server-workers" => {
                args.server_workers = value("--server-workers")?
                    .parse()
                    .map_err(|_| "bad --server-workers".to_string())?
            }
            "--rebalance" => {
                args.rebalance = match value("--rebalance")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --rebalance {other:?} (want on|off)")),
                }
            }
            "--tenant-balance" => {
                args.tenant_balance = match value("--tenant-balance")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --tenant-balance {other:?} (want on|off)")),
                }
            }
            "--slow-op-micros" => {
                args.slow_op_micros = value("--slow-op-micros")?
                    .parse()
                    .map_err(|_| "bad --slow-op-micros".to_string())?
            }
            "--mrc-sample" => {
                args.mrc_sample = value("--mrc-sample")?
                    .parse()
                    .map_err(|_| "bad --mrc-sample".to_string())?
            }
            "--hot-key-promote" => {
                args.hot_key_promote = match value("--hot-key-promote")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --hot-key-promote {other:?} (want on|off)")),
                }
            }
            "--tenants" => tenants_spec = Some(value("--tenants")?),
            "--fill-on-miss" => {
                args.load.fill_on_miss = match value("--fill-on-miss")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --fill-on-miss {other:?} (want on|off)")),
                }
            }
            "--requests" => {
                args.load.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "bad --requests".to_string())?
            }
            "--connections" => {
                args.load.connections = value("--connections")?
                    .parse()
                    .map_err(|_| "bad --connections".to_string())?
            }
            "--pipeline" => {
                args.load.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|_| "bad --pipeline".to_string())?
            }
            "--mode" => match value("--mode")?.as_str() {
                "closed" => open_mode = false,
                "open" => open_mode = true,
                other => return Err(format!("bad --mode {other:?}")),
            },
            "--rate" => {
                open_rate = value("--rate")?
                    .parse()
                    .map_err(|_| "bad --rate".to_string())?
            }
            "--warmup" => {
                args.load.warmup_keys = value("--warmup")?
                    .parse()
                    .map_err(|_| "bad --warmup".to_string())?
            }
            "--keys" => {
                num_keys = value("--keys")?
                    .parse()
                    .map_err(|_| "bad --keys".to_string())?
            }
            "--zipf" => {
                zipf = value("--zipf")?
                    .parse()
                    .map_err(|_| "bad --zipf".to_string())?
            }
            "--get-fraction" => {
                args.load.workload.get_fraction = value("--get-fraction")?
                    .parse()
                    .map_err(|_| "bad --get-fraction".to_string())?
            }
            "--value-size" => args.load.workload.sizes = parse_value_size(&value("--value-size")?)?,
            "--seed" => {
                args.load.workload.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--sweep" => {
                let list = value("--sweep")?;
                let counts: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                let counts = counts.map_err(|_| format!("bad --sweep {list:?}"))?;
                if counts.is_empty() {
                    return Err("--sweep needs at least one shard count".to_string());
                }
                args.sweep = Some(counts);
            }
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--scenario-scale" => {
                args.scenario_scale = value("--scenario-scale")?
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or_else(|| "bad --scenario-scale (need a positive number)".to_string())?
            }
            "--json" => args.json_path = Some(value("--json")?),
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
        i += 1;
    }

    args.load.workload.keys = if zipf <= 0.0 {
        KeyPopularity::Uniform {
            num_keys: num_keys.max(1),
        }
    } else {
        KeyPopularity::Zipf {
            num_keys: num_keys.max(1),
            exponent: zipf,
        }
    };
    args.load.mode = if open_mode {
        LoadMode::Open {
            target_rps: open_rate,
        }
    } else {
        LoadMode::Closed
    };
    if let Some(spec) = &tenants_spec {
        let tenants: Result<Vec<TenantLoad>, String> = spec
            .split(',')
            .map(|entry| parse_tenant(entry.trim(), &args.load.workload, num_keys, zipf))
            .collect();
        let tenants = tenants?;
        if tenants.is_empty() {
            return Err("--tenants needs at least one entry".to_string());
        }
        args.load.tenants = tenants;
    }
    if args.sweep.is_some() && args.addr.is_some() {
        return Err("--sweep self-hosts the server; it cannot be combined with --addr".to_string());
    }
    if args.scenario.is_some() && (args.addr.is_some() || args.sweep.is_some()) {
        return Err(
            "--scenario self-hosts its own server; it cannot be combined with --addr or --sweep"
                .to_string(),
        );
    }
    if let (Some(_), Some(flag)) = (&args.addr, self_host_flag) {
        return Err(format!(
            "{flag} configures the self-hosted server and has no effect on an \
             external one; drop it or drop --addr"
        ));
    }
    Ok(args)
}

fn summarize(report: &LoadReport) {
    eprintln!(
        "{} mode, {} conns x pipeline {}: {} requests in {:.3} s = {:.0} req/s",
        report.mode,
        report.connections,
        report.pipeline,
        report.requests,
        report.elapsed_secs,
        report.throughput_rps
    );
    eprintln!(
        "  hit rate {:.1}% ({} hits / {} gets), {} sets, {} errors",
        report.hit_rate * 100.0,
        report.get_hits,
        report.gets,
        report.sets,
        report.errors
    );
    eprintln!(
        "  latency us: p50 {:.0}  p90 {:.0}  p99 {:.0}  p99.9 {:.0}  max {:.0}",
        report.latency.p50_us,
        report.latency.p90_us,
        report.latency.p99_us,
        report.latency.p999_us,
        report.latency.max_us
    );
    if report.fills > 0 {
        eprintln!(
            "  fills: {} scheduled, latency us: p50 {:.0}  p99 {:.0}",
            report.fills, report.fill_latency.p50_us, report.fill_latency.p99_us
        );
    }
    if let Some(server) = &report.server {
        eprintln!(
            "  server: {} shards, {} workers, {} MB, {} allocator, {} evictions",
            server.shards,
            server.workers,
            server.total_bytes >> 20,
            server.allocator,
            server.evictions
        );
        if server.rebalance_enabled {
            eprintln!(
                "  rebalance: {} runs, {} transfers, {:.1} MB moved",
                server.rebalance_runs,
                server.rebalance_transfers,
                server.rebalance_bytes_moved as f64 / (1 << 20) as f64
            );
        }
        if server.arbiter_enabled {
            eprintln!(
                "  arbiter: {} tenants, {} runs, {} transfers, {:.1} MB moved",
                server.tenant_count,
                server.arbiter_runs,
                server.arbiter_transfers,
                server.arbiter_bytes_moved as f64 / (1 << 20) as f64
            );
        }
        if server.slow_ops > 0 || server.idle_closed_connections > 0 {
            eprintln!(
                "  slow ops: {}, idle-closed connections: {}",
                server.slow_ops, server.idle_closed_connections
            );
        }
        if server.hot_key_enabled {
            eprintln!(
                "  hot keys: {} promotions, {} demotions, {} replica hits",
                server.hot_key_promotions, server.hot_key_demotions, server.hot_key_replica_hits
            );
        }
    }
    if let Some(stats) = &report.server_stats {
        let p99 = |class: &str| {
            stats
                .get("service_latency")
                .and_then(|s| s.get(class))
                .and_then(|s| s.get("p99_us"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        };
        eprintln!(
            "  server-side service time p99 us: local {:.0}  remote {:.0}",
            p99("local"),
            p99("remote")
        );
    }
    for tenant in &report.tenants {
        eprintln!(
            "  tenant {}: {} conns, {} reqs, hit {:.1}%, p99 {:.0} us, budget {:.1} MB, \
             {} shadow hits, {} evictions",
            tenant.tenant,
            tenant.connections,
            tenant.requests,
            tenant.hit_rate * 100.0,
            tenant.latency.p99_us,
            tenant.budget_bytes as f64 / (1 << 20) as f64,
            tenant.shadow_hits,
            tenant.evictions
        );
    }
}

fn summarize_scenario(report: &ScenarioReport) {
    eprintln!(
        "scenario {} (scale {:.3}): {} requests in {:.2} s, {} errors",
        report.scenario, report.scale, report.requests, report.elapsed_secs, report.errors
    );
    for phase in &report.phases {
        eprintln!(
            "  phase {:<12} {:>6} mode: {:>8} reqs, {:>9.0} req/s, hit {:>5.1}%, p99 {:.0} us",
            phase.name,
            phase.mode,
            phase.requests,
            phase.throughput_rps,
            phase.hit_rate * 100.0,
            phase.latency.p99_us
        );
    }
    for verdict in &report.invariants {
        eprintln!(
            "  {} {:<28} {}",
            if verdict.pass { "ok  " } else { "FAIL" },
            verdict.name,
            verdict.detail
        );
    }
}

fn summarize_sweep(sweep: &SweepReport) {
    eprintln!("shard sweep:");
    for point in &sweep.points {
        eprintln!(
            "  {:>2} shards: {:>9.0} req/s  ({:.2}x vs baseline)  p99 {:.0} us  hit {:.1}%",
            point.shards,
            point.throughput_rps,
            point.speedup_vs_baseline,
            point.p99_us,
            point.hit_rate * 100.0
        );
    }
}

fn emit(json: &str, path: &Option<String>) -> std::io::Result<()> {
    match path {
        Some(path) => {
            std::fs::write(path, format!("{json}\n"))?;
            eprintln!("report written to {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout.write_all(json.as_bytes())?;
            stdout.write_all(b"\n")?;
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) if message.is_empty() => {
            eprint!("{USAGE}");
            return Ok(());
        }
        Err(message) => return Err(message),
    };

    let host = SelfHostConfig {
        total_bytes: args.mb << 20,
        mode: args.allocator,
        workers: args.server_workers,
        rebalance: args.rebalance,
        tenant_balance: args.tenant_balance,
        slow_op_micros: args.slow_op_micros,
        mrc_sample: args.mrc_sample,
        hot_key_promote: args.hot_key_promote,
        ..SelfHostConfig::default()
    };

    if let Some(name) = &args.scenario {
        let scenario = named_scenario(name)
            .ok_or_else(|| {
                format!(
                    "unknown scenario {name:?} (known: {})",
                    scenario_names().join(", ")
                )
            })?
            .scaled(args.scenario_scale);
        let report = run_scenario(&scenario).map_err(|e| e.to_string())?;
        summarize_scenario(&report);
        emit(&report.to_json(), &args.json_path).map_err(|e| e.to_string())?;
        if !report.passed {
            let failed: Vec<&str> = report
                .invariants
                .iter()
                .filter(|v| !v.pass)
                .map(|v| v.name.as_str())
                .collect();
            return Err(format!(
                "scenario {name} violated invariant(s): {}",
                failed.join(", ")
            ));
        }
        return Ok(());
    }

    if let Some(shard_counts) = &args.sweep {
        let sweep = run_shard_sweep(&args.load, &host, shard_counts).map_err(|e| e.to_string())?;
        summarize_sweep(&sweep);
        emit(&sweep.to_json(), &args.json_path).map_err(|e| e.to_string())?;
        return Ok(());
    }

    let report = match &args.addr {
        Some(addr) => {
            let mut config = args.load.clone();
            config.addr = addr.clone();
            run_load(&config).map_err(|e| e.to_string())?
        }
        None => run_self_hosted(&args.load, &host, args.shards).map_err(|e| e.to_string())?,
    };
    summarize(&report);
    emit(&report.to_json(), &args.json_path).map_err(|e| e.to_string())?;
    if report.errors > 0 {
        eprintln!("warning: {} request-level errors", report.errors);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}
