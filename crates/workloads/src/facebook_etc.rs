//! Facebook-ETC-like micro-benchmark workloads (paper §5.1, §5.6).
//!
//! The paper stresses its implementation with Mutilate, a load generator
//! that replays the key/value-size and GET/SET distributions measured in the
//! Facebook ETC pool (Atikoglu et al., SIGMETRICS 2012), plus a synthetic
//! worst case in which "all keys are unique and all queries miss the cache"
//! so that every request exercises the shadow-queue and eviction paths.
//! This module generates both.

use crate::sizes::SizeDistribution;
use crate::trace::{Op, Request, Trace};
use crate::zipf::ZipfSampler;
use cache_core::{AppId, Key};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the ETC-like workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EtcConfig {
    /// Application id attached to the requests.
    pub app: AppId,
    /// Number of distinct keys.
    pub num_keys: u64,
    /// Zipf exponent of key popularity (the ETC pool is strongly skewed).
    pub zipf_exponent: f64,
    /// Fraction of GET requests; the paper's Table 7 uses 96.7% / 3.3% as
    /// the Facebook ratio, plus 50/50 and 10/90 sweeps.
    pub get_fraction: f64,
    /// Value-size distribution (defaults to the published ETC fit).
    pub sizes: SizeDistribution,
    /// Seed for the request stream.
    pub seed: u64,
}

impl Default for EtcConfig {
    fn default() -> Self {
        EtcConfig {
            app: AppId::new(0),
            num_keys: 100_000,
            zipf_exponent: 0.99,
            get_fraction: 0.967,
            sizes: SizeDistribution::facebook_etc(),
            seed: 0xE7C0_FFEE,
        }
    }
}

impl EtcConfig {
    /// The GET/SET mixes of the paper's Table 7.
    pub fn table7_mixes() -> [(f64, f64); 3] {
        [(0.967, 0.033), (0.5, 0.5), (0.1, 0.9)]
    }

    /// Overrides the GET fraction.
    pub fn with_get_fraction(mut self, get_fraction: f64) -> Self {
        self.get_fraction = get_fraction.clamp(0.0, 1.0);
        self
    }
}

/// Generates an ETC-like trace of `requests` requests.
pub fn etc_workload(config: &EtcConfig, requests: u64) -> Trace {
    let zipf = ZipfSampler::new(config.num_keys.max(1), config.zipf_exponent.max(0.0));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Trace::new();
    for i in 0..requests {
        let rank = zipf.sample(&mut rng);
        let key = Key::new(rank);
        let size = config
            .sizes
            .size_for_key(rank, config.seed)
            .min(u32::MAX as u64) as u32;
        let op = if rng.gen_bool(config.get_fraction) {
            Op::Get
        } else {
            Op::Set
        };
        trace.push(Request {
            app: config.app,
            key,
            size,
            op,
            time: i,
        });
    }
    trace
}

/// Generates the worst-case workload of §5.6: every key is unique, so every
/// GET misses, every miss walks the shadow queues, and every fill causes
/// evictions once the cache is full. `get_fraction` controls the GET/SET mix
/// (Table 7 varies it; Table 6 uses GET-then-fill pairs produced by the
/// simulator).
pub fn all_miss_workload(app: AppId, requests: u64, get_fraction: f64, seed: u64) -> Trace {
    let sizes = SizeDistribution::facebook_etc();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for i in 0..requests {
        // Unique keys: derived from the request index, never repeated.
        let key_id = (1u64 << 50) | i;
        let size = sizes.size_for_key(key_id, seed).min(u32::MAX as u64) as u32;
        let op = if rng.gen_bool(get_fraction.clamp(0.0, 1.0)) {
            Op::Get
        } else {
            Op::Set
        };
        trace.push(Request {
            app,
            key: Key::new(key_id),
            size,
            op,
            time: i,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn etc_mix_matches_configuration() {
        let config = EtcConfig::default();
        let trace = etc_workload(&config, 50_000);
        assert_eq!(trace.len(), 50_000);
        let gets = trace.iter().filter(|r| r.op == Op::Get).count() as f64;
        let fraction = gets / trace.len() as f64;
        assert!((fraction - 0.967).abs() < 0.01, "GET fraction = {fraction}");
        // Popularity is skewed: the most popular key dominates.
        let mut counts = std::collections::HashMap::new();
        for r in trace.iter() {
            *counts.entry(r.key).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 1_000, "hot key should be very hot, got {max}");
    }

    #[test]
    fn etc_sizes_follow_the_distribution() {
        let trace = etc_workload(&EtcConfig::default(), 20_000);
        let small = trace.iter().filter(|r| r.size <= 512).count();
        let large = trace.iter().filter(|r| r.size > 4_096).count();
        assert!(small > large, "most ETC values are small");
        assert!(trace.iter().all(|r| r.size >= 1));
    }

    #[test]
    fn table7_mixes_are_the_papers() {
        let mixes = EtcConfig::table7_mixes();
        assert_eq!(mixes[0], (0.967, 0.033));
        assert_eq!(mixes[1], (0.5, 0.5));
        assert_eq!(mixes[2], (0.1, 0.9));
    }

    #[test]
    fn all_miss_workload_never_repeats_a_key() {
        let trace = all_miss_workload(AppId::new(0), 30_000, 0.967, 9);
        let distinct: HashSet<Key> = trace.iter().map(|r| r.key).collect();
        assert_eq!(distinct.len(), trace.len());
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = etc_workload(&EtcConfig::default(), 5_000);
        let b = etc_workload(&EtcConfig::default(), 5_000);
        assert_eq!(a, b);
        let c = all_miss_workload(AppId::new(1), 5_000, 0.5, 3);
        let d = all_miss_workload(AppId::new(1), 5_000, 0.5, 3);
        assert_eq!(c, d);
    }
}
