//! Server demo: start the Memcached-protocol TCP server backed by the
//! Cliffhanger-managed cache, drive it with the bundled client, and print
//! the server-side statistics.
//!
//! Run with: `cargo run --release --example server_demo`

use cliffhanger_repro::prelude::*;

fn main() -> std::io::Result<()> {
    let mut server = CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // Two event loops serve every connection in this demo.
        workers: 2,
        backend: BackendConfig {
            total_bytes: 32 << 20,
            mode: BackendMode::Cliffhanger,
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })?;
    println!("cache server listening on {}", server.local_addr());

    let mut client = CacheClient::connect(server.local_addr())?;
    println!("server version: {}", client.version()?);

    // Store and read back a few values.
    client.set(b"user:1:name", 0, b"Ada Lovelace")?;
    client.set(b"user:2:name", 0, b"Alan Turing")?;
    client.set(b"page:/home", 1, b"<html>cached page</html>")?;

    for key in [
        b"user:1:name".as_ref(),
        b"user:2:name",
        b"page:/home",
        b"missing",
    ] {
        match client.get(key)? {
            Some((flags, value)) => println!(
                "GET {:<14} -> HIT  (flags {flags}, {} bytes): {}",
                String::from_utf8_lossy(key),
                value.len(),
                String::from_utf8_lossy(&value)
            ),
            None => println!("GET {:<14} -> MISS", String::from_utf8_lossy(key)),
        }
    }

    // Push a burst of traffic through so the statistics are interesting.
    for i in 0..5_000u32 {
        let key = format!("burst:{}", i % 1_500);
        if client.get(key.as_bytes())?.is_none() {
            client.set(key.as_bytes(), 0, format!("payload-{i}").as_bytes())?;
        }
    }

    println!("\nserver statistics:");
    for (name, value) in client.stats()? {
        println!("  {name:<16} {value}");
    }

    client.quit()?;
    server.shutdown();
    Ok(())
}
