//! A fixed-size worker pool over crossbeam channels.

use crossbeam_channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A simple thread pool: jobs are executed in submission order by a fixed
/// number of worker threads; dropping the pool waits for queued jobs to
/// finish.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `size` worker threads (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("cache-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = receiver.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Submits a job for execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        if let Some(sender) = &self.sender {
            // The receiver only disappears when the pool is shutting down.
            let _ = sender.send(Box::new(job));
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets the workers drain remaining jobs and exit.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            assert_eq!(pool.size(), 4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropping the pool waits for every job.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
