//! # cliffhanger
//!
//! The paper's primary contribution: a lightweight, iterative memory
//! allocator for web memory caches that (a) hill-climbs the hit-rate curves
//! of its eviction queues using shadow-queue hits as a local gradient signal
//! (Algorithm 1) and (b) scales performance cliffs by splitting each queue in
//! two and searching for the cliff boundaries with a pair of small shadow
//! queues (Algorithms 2 and 3), with no stack-distance profiling and no
//! global coordination.
//!
//! ## Modules
//!
//! * [`config`] — the knobs the paper discusses in §5.3 (shadow-queue sizes,
//!   credit sizes, the 1000-item threshold for cliff scaling).
//! * [`hill_climb`] — Algorithm 1: credit-based resizing across queues.
//! * [`cliff_scale`] — Algorithms 2 and 3: pointer updates and the request
//!   ratio / physical-size computation.
//! * [`partitioned_queue`] — the per-queue structure of Figure 5: two
//!   physical sub-queues, their 128-item cliff shadow queues (plus the
//!   physical tail regions) and the long hill-climbing shadow queue.
//! * [`controller`] — the combined Cliffhanger cache for one application:
//!   one managed, partitioned queue per slab class, hill climbing across
//!   classes and cliff scaling within each class (§4.3).
//! * [`multi_app`] — an extension that runs one hill-climbing pool across
//!   every queue of every application on a server (the "queue of an entire
//!   application" case mentioned in §4.1).
//! * [`shard_balance`] — an extension that treats the *shards* of a
//!   key-partitioned server as the queues: per-shard shadow-hit deltas are
//!   the gradients, and a periodic hill-climbing round moves budget between
//!   shards so a sharded deployment converges toward the unsharded
//!   controller's hit rate instead of re-creating static partitions.
//! * [`tenant_arbiter`] — the same machinery one level further up: whole
//!   applications (tenants) sharing the live server are the queues, and the
//!   arbiter moves budget between tenants globally, replacing Memcachier's
//!   static reservations (§3) with dynamic cross-application arbitration.
//! * [`events`] — the host-facing [`EventSink`] hook: balancers and the
//!   controller narrate their decisions (transfers with the gradients that
//!   justified them, cliff-scaler ratio steps, free-pool grants) to a sink
//!   the host installs, typically a flight-recorder journal.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod cliff_scale;
pub mod config;
pub mod controller;
pub mod events;
pub mod hill_climb;
pub mod multi_app;
pub mod partitioned_queue;
pub mod shard_balance;
pub mod tenant_arbiter;

pub use cliff_scale::{CliffScaler, PointerEvent};
pub use config::{CliffhangerConfig, ShardBalanceConfig, TenantBalanceConfig};
pub use controller::{ClassSnapshot, Cliffhanger};
pub use events::{EventSink, NoopSink, TransferEvent};
pub use hill_climb::HillClimber;
pub use multi_app::CliffhangerServer;
pub use partitioned_queue::{Partition, PartitionedQueue, QueueEvent, SetOutcome};
pub use shard_balance::{ShardRebalancer, ShardSample, ShardTransfer};
pub use tenant_arbiter::{TenantArbiter, TenantSample, TenantTransfer};
