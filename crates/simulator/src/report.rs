//! Plain-text tables and figure series.
//!
//! The harness binaries (`paper_tables`, `paper_figures`) print these; the
//! integration tests and EXPERIMENTS.md consume the same structures.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A table with a title, column headers and string cells.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. "Table 4: Application 19 ablation").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row should have `headers.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// A cell formatted as a percentage with one decimal.
    pub fn pct(value: f64) -> String {
        format!("{:.1}%", value * 100.0)
    }

    /// A cell formatted as a ratio with three decimals.
    pub fn ratio(value: f64) -> String {
        format!("{value:.3}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        // Column widths from headers and cells.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.headers, &widths))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row, &widths))?;
        }
        Ok(())
    }
}

/// A figure rendered as one or more named numeric series over a shared x
/// axis.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Figure title (e.g. "Figure 3: Application 11 hit-rate curve").
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Labels of the y series.
    pub series_labels: Vec<String>,
    /// Rows of `(x, [y per series])`.
    pub points: Vec<(f64, Vec<f64>)>,
}

impl FigureSeries {
    /// Creates an empty figure.
    pub fn new(title: &str, x_label: &str, series_labels: &[&str]) -> Self {
        FigureSeries {
            title: title.to_string(),
            x_label: x_label.to_string(),
            series_labels: series_labels.iter().map(|s| s.to_string()).collect(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, ys: Vec<f64>) {
        debug_assert_eq!(ys.len(), self.series_labels.len(), "series width mismatch");
        self.points.push((x, ys));
    }

    /// Renders the figure as CSV with the x column first.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for label in &self.series_labels {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        for (x, ys) in &self.points {
            out.push_str(&format!("{x}"));
            for y in ys {
                out.push_str(&format!(",{y}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigureSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{}", self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_exports() {
        let mut t = Table::new("Demo", &["App", "Hit rate"]);
        t.push_row(vec!["app1".into(), Table::pct(0.677)]);
        t.push_row(vec!["app2".into(), Table::pct(0.275)]);
        let text = t.to_string();
        assert!(text.contains("Demo"));
        assert!(text.contains("67.7%"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("App,Hit rate"));
    }

    #[test]
    fn figure_renders_and_exports() {
        let mut fig = FigureSeries::new("Fig", "items", &["hit rate"]);
        fig.push(100.0, vec![0.25]);
        fig.push(200.0, vec![0.5]);
        let csv = fig.to_csv();
        assert!(csv.starts_with("items,hit rate"));
        assert_eq!(csv.lines().count(), 3);
        assert!(fig.to_string().contains("Fig"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(Table::pct(0.5), "50.0%");
        assert_eq!(Table::ratio(0.4567), "0.457");
    }
}
