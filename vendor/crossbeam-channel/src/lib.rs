//! Minimal offline stand-in for `crossbeam-channel`: an unbounded MPMC
//! channel built on `Mutex` + `Condvar`. Both `Sender` and `Receiver` are
//! cloneable; disconnection is signalled when the other side's last handle
//! drops, matching crossbeam's semantics for the API subset the thread pool
//! uses (`unbounded`, `send`, `recv`, `try_recv`).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message, failing if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.ready.notify_all();
        }
    }
}

/// The receiving half of a channel; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message is available or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.ready.wait(state).unwrap();
        }
    }

    /// Returns a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        match state.queue.pop_front() {
            Some(value) => Ok(value),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_across_cloned_receivers() {
        let (tx, rx) = unbounded::<u32>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
