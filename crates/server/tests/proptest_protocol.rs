//! Property test: incremental parsing is byte-boundary independent.
//!
//! The loadgen drives pipelined connections, so the server's parser sees
//! command streams cut at arbitrary positions — mid-line, mid-payload, even
//! mid-CRLF. Whatever the kernel delivers, the sequence of parsed commands
//! must be exactly the sequence an unsplit parse produces, and the consumed
//! byte count must match. This test renders arbitrary command scripts
//! (valid and invalid, with binary payloads), feeds them whole and in
//! arbitrary chunks, and demands identical outcomes.

use bytes::BytesMut;
use cache_server::protocol::{parse_command, ParseOutcome, Parser};
use proptest::prelude::*;

/// One scripted protocol item, rendered to wire bytes.
#[derive(Clone, Debug)]
enum Item {
    Get(Vec<String>),
    Store {
        verb: usize,
        key: String,
        flags: u32,
        data: Vec<u8>,
        noreply: bool,
    },
    Delete {
        key: String,
        noreply: bool,
    },
    Stats,
    Version,
    FlushAll,
    Garbage(String),
}

const STORE_VERBS: [&str; 3] = ["set", "add", "replace"];

fn render(items: &[Item]) -> Vec<u8> {
    let mut out = Vec::new();
    for item in items {
        match item {
            Item::Get(keys) => {
                out.extend_from_slice(b"get");
                for key in keys {
                    out.push(b' ');
                    out.extend_from_slice(key.as_bytes());
                }
                out.extend_from_slice(b"\r\n");
            }
            Item::Store {
                verb,
                key,
                flags,
                data,
                noreply,
            } => {
                let verb = STORE_VERBS[verb % STORE_VERBS.len()];
                let tail = if *noreply { " noreply" } else { "" };
                out.extend_from_slice(
                    format!("{verb} {key} {flags} 0 {}{tail}\r\n", data.len()).as_bytes(),
                );
                out.extend_from_slice(data);
                out.extend_from_slice(b"\r\n");
            }
            Item::Delete { key, noreply } => {
                let tail = if *noreply { " noreply" } else { "" };
                out.extend_from_slice(format!("delete {key}{tail}\r\n").as_bytes());
            }
            Item::Stats => out.extend_from_slice(b"stats\r\n"),
            Item::Version => out.extend_from_slice(b"version\r\n"),
            Item::FlushAll => out.extend_from_slice(b"flush_all\r\n"),
            Item::Garbage(line) => {
                out.extend_from_slice(line.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
        }
    }
    out
}

/// Drains every currently-parseable command from `buffer`.
fn drain(buffer: &mut BytesMut, outcomes: &mut Vec<ParseOutcome>) {
    loop {
        match parse_command(buffer) {
            ParseOutcome::Incomplete => break,
            outcome => outcomes.push(outcome),
        }
    }
}

/// Parses the whole stream fed at once.
fn parse_unsplit(stream: &[u8]) -> (Vec<ParseOutcome>, Vec<u8>) {
    let mut buffer = BytesMut::new();
    buffer.extend_from_slice(stream);
    let mut outcomes = Vec::new();
    drain(&mut buffer, &mut outcomes);
    (outcomes, buffer.to_vec())
}

/// Parses the stream fed chunk by chunk (chunk sizes cycle through `cuts`).
fn parse_split(stream: &[u8], cuts: &[usize]) -> (Vec<ParseOutcome>, Vec<u8>) {
    let mut buffer = BytesMut::new();
    let mut outcomes = Vec::new();
    let mut offset = 0;
    let mut cut_index = 0;
    while offset < stream.len() {
        let chunk = if cuts.is_empty() {
            1
        } else {
            cuts[cut_index % cuts.len()].max(1)
        };
        cut_index += 1;
        let end = (offset + chunk).min(stream.len());
        buffer.extend_from_slice(&stream[offset..end]);
        offset = end;
        drain(&mut buffer, &mut outcomes);
    }
    (outcomes, buffer.to_vec())
}

/// Parses the stream chunk by chunk through the *stateful, resumable*
/// [`Parser`] the reactor's connections use — the parser that consumes a
/// store header before its data block has arrived. Returns the outcomes,
/// the unconsumed bytes, and whether the parser ended mid-command.
fn parse_split_resumable(stream: &[u8], cuts: &[usize]) -> (Vec<ParseOutcome>, Vec<u8>, bool) {
    let mut parser = Parser::new();
    let mut buffer = BytesMut::new();
    let mut outcomes = Vec::new();
    let mut offset = 0;
    let mut cut_index = 0;
    while offset < stream.len() {
        let chunk = if cuts.is_empty() {
            1
        } else {
            cuts[cut_index % cuts.len()].max(1)
        };
        cut_index += 1;
        let end = (offset + chunk).min(stream.len());
        buffer.extend_from_slice(&stream[offset..end]);
        offset = end;
        loop {
            match parser.parse(&mut buffer) {
                ParseOutcome::Incomplete => break,
                outcome => outcomes.push(outcome),
            }
        }
    }
    (outcomes, buffer.to_vec(), parser.mid_command())
}

fn key_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..36, 1..9).prop_map(|digits| {
        digits
            .into_iter()
            .map(|d| char::from_digit(d as u32, 36).unwrap())
            .collect()
    })
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        prop::collection::vec(key_strategy(), 1..4).prop_map(Item::Get),
        (
            0usize..3,
            key_strategy(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..64),
            any::<bool>(),
        )
            .prop_map(|(verb, key, flags, data, noreply)| Item::Store {
                verb,
                key,
                flags,
                data,
                noreply,
            }),
        (key_strategy(), any::<bool>()).prop_map(|(key, noreply)| Item::Delete { key, noreply }),
        Just(Item::Stats),
        Just(Item::Version),
        Just(Item::FlushAll),
        key_strategy().prop_map(|k| Item::Garbage(format!("bogus-{k}"))),
        Just(Item::Garbage(String::new())),
        // A store header whose argument list is malformed.
        key_strategy().prop_map(|k| Item::Garbage(format!("set {k}"))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Chunked parsing must be indistinguishable from unsplit parsing for
    /// any script and any chunking.
    #[test]
    fn split_parse_equals_unsplit_parse(
        items in prop::collection::vec(item_strategy(), 0..20),
        cuts in prop::collection::vec(1usize..24, 0..16),
    ) {
        let stream = render(&items);
        let (whole, whole_rest) = parse_unsplit(&stream);
        let (split, split_rest) = parse_split(&stream, &cuts);
        prop_assert_eq!(&whole, &split);
        prop_assert_eq!(&whole_rest, &split_rest);
        // Every rendered item yields exactly one outcome, and the rendered
        // stream ends on a command boundary, so nothing may be left over.
        prop_assert_eq!(whole.len(), items.len());
        prop_assert_eq!(whole_rest.len(), 0);
    }

    /// Byte-at-a-time is the worst-case chunking and must also agree.
    #[test]
    fn byte_at_a_time_parse_agrees(items in prop::collection::vec(item_strategy(), 0..12)) {
        let stream = render(&items);
        let (whole, _) = parse_unsplit(&stream);
        let (split, rest) = parse_split(&stream, &[1]);
        prop_assert_eq!(&whole, &split);
        prop_assert_eq!(rest.len(), 0);
    }

    /// The stateful resumable parser (the reactor's) must produce exactly
    /// the command stream the stateless parser produces, for any script cut
    /// at any byte boundaries — including cuts inside a `set`'s data block,
    /// where the resumable parser has already consumed the header line.
    #[test]
    fn resumable_parser_agrees_for_any_split(
        items in prop::collection::vec(item_strategy(), 0..20),
        cuts in prop::collection::vec(1usize..24, 0..16),
    ) {
        let stream = render(&items);
        let (whole, _) = parse_unsplit(&stream);
        let (resumed, rest, mid_command) = parse_split_resumable(&stream, &cuts);
        prop_assert_eq!(&whole, &resumed);
        // The rendered stream ends on a command boundary: everything must
        // be consumed and no store may be left dangling.
        prop_assert_eq!(rest.len(), 0);
        prop_assert!(!mid_command);
    }

    /// Byte-at-a-time through the resumable parser — the exact shape a
    /// trickling socket produces — must also agree.
    #[test]
    fn resumable_parser_agrees_byte_at_a_time(
        items in prop::collection::vec(item_strategy(), 0..12),
    ) {
        let stream = render(&items);
        let (whole, _) = parse_unsplit(&stream);
        let (resumed, rest, mid_command) = parse_split_resumable(&stream, &[1]);
        prop_assert_eq!(&whole, &resumed);
        prop_assert_eq!(rest.len(), 0);
        prop_assert!(!mid_command);
    }

    /// A truncated stream never loses the commands before the truncation
    /// point, and never fabricates a command from the partial tail.
    #[test]
    fn truncation_preserves_the_prefix(
        items in prop::collection::vec(item_strategy(), 1..10),
        chop in 1usize..40,
    ) {
        let stream = render(&items);
        let keep = stream.len().saturating_sub(chop % stream.len());
        let (full, _) = parse_unsplit(&stream);
        let (truncated, _) = parse_split(&stream[..keep], &[3, 7, 1]);
        // The truncated outcomes must be a prefix of the full outcomes.
        prop_assert!(truncated.len() <= full.len());
        prop_assert_eq!(&full[..truncated.len()], &truncated[..]);
    }
}
