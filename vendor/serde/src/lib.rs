//! Minimal offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment for this workspace has no network access, so the
//! real serde cannot be fetched. This shim keeps the same import surface the
//! workspace uses — `serde::{Serialize, Deserialize}` traits plus the derive
//! macros of the same names — but serializes through a tiny self-describing
//! [`Value`] tree instead of serde's visitor machinery. `serde_json` (also
//! vendored) renders that tree to and from real JSON, so trace files written
//! by this shim are genuine JSON and round-trip losslessly.
//!
//! Only the functionality exercised by this workspace is implemented:
//! derives for non-generic structs and enums, and impls for the primitive,
//! string, tuple, `Vec`, and `Option` types that appear in workspace fields.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value: the shim's data model, mirroring the
/// JSON data model (plus a distinction between signed/unsigned/float).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Seq`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable message describing the mismatch.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Error for a struct field absent from the serialized map.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// Error for a value of the wrong shape.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error(format!("invalid type: expected {expected}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be rendered to a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the shim data model.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from the shim data model.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// Identity round-trips, so documents of unknown shape can be read as a
// [`Value`] tree and inspected structurally (what the real `serde_json`
// calls `serde_json::Value`).
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::invalid_type("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::invalid_type("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::invalid_type("float", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::invalid_type("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::invalid_type("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        // Keys are arbitrary serializable types, so maps serialize as
        // sequences of `[key, value]` pairs rather than JSON objects.
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(<(K, V)>::deserialize).collect(),
            other => Err(Error::invalid_type("sequence of pairs", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(<(K, V)>::deserialize).collect(),
            other => Err(Error::invalid_type("sequence of pairs", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::deserialize(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                            )?,
                        )+);
                        Ok(out)
                    }
                    other => Err(Error::invalid_type("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
